open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Trace = Tinca_obs.Trace
module Codec = Tinca_util.Codec
module Flight = Tinca_obs.Flight

let log_src = Logs.Src.create "tinca.shard" ~doc:"Tinca sharded cache layer"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- media header ------------------------------------------------------- *)

(* Two reserved cache lines in front of the shard regions:

   line 0  shard directory — magic, shard count and the per-shard
           geometry parameters, written once at format time;
   line 1  cross-shard commit record ("seal") — a single 8-byte value,
           0 when no multi-shard transaction is in its publish window,
           else (shard mask << 32) | epoch.  One atomic write, so a
           crash observes either no seal or a whole one.

   Everything from byte 128 on is divided into [nshards] equal spans,
   each holding one full Cache layout (superblock included).

   With ONE shard there is no header at all: the media is the plain
   unsharded Cache layout at byte 0, byte for byte — which is what lets
   N=1 reproduce the single-ring commit-point numbers exactly (the
   header would shift the data region and change the fitted block
   count).  A seal is never needed there either: the cross-shard commit
   record only exists for transactions spanning >= 2 shards.  Recovery
   discriminates by the magic at offset 0 (the shard directory's
   "TINCASHD" vs the Cache superblock's own tag). *)

let dir_off = 0
let seal_off = 64
let header_bytes = 128
let magic = 0x44485341434E4954L (* "TINCASHD" *)

(* The seal packs the shard mask above a 32-bit epoch; 30 shards keep
   (mask << 32) inside OCaml's 63-bit int. *)
let max_shards = 30

let span_of ~pmem ~nshards = (Pmem.size pmem - header_bytes) / nshards / 64 * 64
let base_of ~span i = header_bytes + (i * span)

type t = {
  pmem : Pmem.t;
  clock : Clock.t;
  metrics : Metrics.t;
  caches : Cache.t array;
  lanes : float array;
      (* Per-shard virtual completion times for the parallel-throughput
         model: shard work runs serially on the one simulated clock, and
         each delta is attributed to its shard's lane; cross-shard sync
         points equalize the lanes.  The makespan (max lane) is the
         wall-clock a per-shard-threaded execution would take. *)
  mutable epoch : int; (* seal epochs issued since attach *)
}

let nshards t = Array.length t.caches
let cache t i = t.caches.(i)
let caches t = Array.copy t.caches

(* --- striping ----------------------------------------------------------- *)

(* Fibonacci-hash striping: stable (pure function of the block number),
   total (every block maps to exactly one shard) and balanced (the
   multiplier scrambles sequential block numbers across shards).  Kept
   independent of geometry so reformatting with the same shard count
   never migrates blocks. *)
let stripe ~nshards blkno =
  if nshards = 1 then 0
  else
    let h = blkno * 0x9E3779B97F4A7C1 in
    (h lxor (h lsr 29)) land max_int mod nshards

let shard_of t blkno = stripe ~nshards:(nshards t) blkno

(* --- lane accounting ---------------------------------------------------- *)

let exec t i f =
  let t0 = Clock.now_ns t.clock in
  let r = f () in
  t.lanes.(i) <- t.lanes.(i) +. (Clock.now_ns t.clock -. t0);
  r

(* Cross-shard synchronization point: no lane proceeds until every lane
   has arrived. *)
let barrier t =
  let m = Array.fold_left max 0.0 t.lanes in
  Array.fill t.lanes 0 (Array.length t.lanes) m

(* Coordinator work (the seal writes): all lanes wait for it. *)
let exec_global t f =
  barrier t;
  let t0 = Clock.now_ns t.clock in
  let r = f () in
  let dt = Clock.now_ns t.clock -. t0 in
  for i = 0 to Array.length t.lanes - 1 do
    t.lanes.(i) <- t.lanes.(i) +. dt
  done;
  r

let makespan_ns t = Array.fold_left max 0.0 t.lanes
let lane_ns t = Array.copy t.lanes
let reset_lanes t = Array.fill t.lanes 0 (Array.length t.lanes) 0.0

(* --- fault injection (harness self-tests) -------------------------------- *)

(* Deliberately planted commit-path mutations, used by the lockstep
   refinement harness to prove it would catch the bug classes:

   - [`Skip_seal] — the cross-shard commit record is never persisted,
     so a crash between two shards' finalize steps recovers one shard's
     sub-commit and rolls the other back — the partial mix the seal
     exists to prevent.
   - [`Drop_durable_notify] — the group committer publishes a batch
     (data, slots and Heads durable) but then "forgets" to seal and
     finalize it, while the facade still reports the member
     transactions durable to their awaiters.  A crash before the next
     (healing) commit point finds the batch inside [Tail, Head) and
     revokes it — acknowledged-durable transactions vanish, exactly
     the lost-ack bug class the crash sweep must observe.

   Never set outside tests. *)
let fault : [ `Skip_seal | `Drop_durable_notify ] option ref = ref None
let set_fault f = fault := f

(* --- the cross-shard commit record -------------------------------------- *)

let seal_value ~mask ~epoch = (mask lsl 32) lor (epoch land 0xFFFFFFFF)
let seal_mask v = v lsr 32

let read_seal pmem = Pmem.read_u64_int pmem ~off:seal_off

let persist_seal pmem v =
  Pmem.set_site pmem "shard.seal";
  Pmem.atomic_write8_int pmem ~off:seal_off v;
  Pmem.persist pmem ~off:seal_off ~len:8

let write_seal t mask =
  if !fault <> Some `Skip_seal then begin
    t.epoch <- t.epoch + 1;
    (* Seal-epoch flight record on the lowest shard in the mask; its
       finalize step (role-switch fence) follows immediately and flushes
       the record's line, so the seal itself stays one persist. *)
    (let rec lowest i = if mask land (1 lsl i) <> 0 then i else lowest (i + 1) in
     if mask <> 0 then
       Cache.flight_note t.caches.(lowest 0) Flight.Seal_epoch ~a:t.epoch ~b:mask);
    persist_seal t.pmem (seal_value ~mask ~epoch:t.epoch);
    Metrics.incr t.metrics "tinca.shard.seals" ~by:1
  end

let clear_seal t = persist_seal t.pmem 0

(* --- format / recover --------------------------------------------------- *)

let format ~nshards ~config ~pmem ~disk ~clock ~metrics =
  if nshards < 1 || nshards > max_shards then
    invalid_arg
      (Printf.sprintf "Tinca.Shard.format: nshards %d not in [1, %d]" nshards max_shards);
  if nshards = 1 then
    (* Plain unsharded layout, no header: byte-identical media and
       commit path to the pre-sharding cache. *)
    let c = Cache.format ~config ~pmem ~disk ~clock ~metrics in
    { pmem; clock; metrics; caches = [| c |]; lanes = [| 0.0 |]; epoch = 0 }
  else begin
    let span = span_of ~pmem ~nshards in
    if span < 64 then invalid_arg "Tinca.Shard.format: pmem too small for this shard count";
    Pmem.set_site pmem "shard.format";
    let b = Bytes.make 64 '\000' in
    Bytes.set_int64_le b 0 magic;
    Codec.set_u32 b 8 nshards;
    Codec.set_u32 b 12 config.Cache.block_size;
    Codec.set_u32 b 16 config.Cache.ring_slots;
    Pmem.write pmem ~off:dir_off b;
    Pmem.persist pmem ~off:dir_off ~len:64;
    persist_seal pmem 0;
    let caches =
      Array.init nshards (fun i ->
          let base = base_of ~span i in
          let c =
            Cache.format_region ~base ~mem_bytes:(base + span) ~config ~pmem ~disk ~clock ~metrics
          in
          Cache.set_flight_shard c i;
          c)
    in
    { pmem; clock; metrics; caches; lanes = Array.make nshards 0.0; epoch = 0 }
  end

(* Seal-directed roll-forward (recovery's all-or-nothing rule, forward
   direction).  A durable seal proves that every shard in the mask had
   staged its sub-commit (data, entries, ring slots fenced durable) and
   advanced its Head before the crash — the seal write is ordered after
   all of them.  So the transaction is re-committed, not revoked: each
   shard's remaining log-role entries are flipped to buffer role (the
   interrupted step-4 role switch, batched under one fence) and its Tail
   moved to Head (the step-5 commit point), after which the seal
   retires.  Every step is idempotent, so a crash mid-roll-forward just
   rolls forward again.  Runs on raw media, before any cache attaches. *)
let roll_forward ~pmem ~nshards ~span ~mask ~clock =
  Pmem.set_site pmem "shard.roll_forward";
  for i = 0 to nshards - 1 do
    if mask land (1 lsl i) <> 0 then begin
      let base = base_of ~span i in
      let layout = Cache.read_layout ~base ~mem_bytes:(base + span) pmem in
      let head = Pmem.read_u64_int pmem ~off:layout.Layout.head_off in
      let tail = Pmem.read_u64_int pmem ~off:layout.Layout.tail_off in
      let lines = ref [] in
      (* Flight recorder, raw-media edition: roll-forward runs before any
         cache attaches, so it appends its replay decisions directly —
         continuing the survivor sequence and riding the role-switch
         fence below (no extra sfence). *)
      let flight_seq =
        ref
          (if layout.Layout.flight_slots = 0 then -1
           else
             let read_slot k =
               Pmem.read pmem
                 ~off:(layout.Layout.flight_off + (k * Layout.flight_record_size))
                 ~len:Layout.flight_record_size
             in
             let survivors, _ = Flight.scan ~slots:layout.Layout.flight_slots ~read:read_slot in
             List.fold_left (fun acc (s, _) -> max acc s) (-1) survivors)
      in
      let flight_decision blkno =
        if layout.Layout.flight_slots > 0 then begin
          flight_seq := !flight_seq + 1;
          let ev =
            {
              Flight.kind = Flight.Recovery_decision;
              shard = i;
              cause = Flight.Sync;
              a = 0 (* roll-forward replay *);
              b = blkno;
              c = 0;
              d = 0;
              batch = -1;
              t_ns = int_of_float (Clock.now_ns clock);
            }
          in
          let off = Layout.flight_slot_off layout !flight_seq in
          Pmem.write pmem ~off (Flight.encode ~seq:!flight_seq ev);
          lines := (off / Pmem.line_size) :: !lines
        end
      in
      for idx = 0 to layout.Layout.nblocks - 1 do
        let off = Layout.entry_off layout idx in
        let e = Entry.decode (Pmem.read pmem ~off ~len:Entry.size) in
        if e.Entry.valid && e.Entry.role = Entry.Log then begin
          Pmem.atomic_write16 pmem ~off (Entry.encode { e with Entry.role = Entry.Buffer });
          lines := (off / Pmem.line_size) :: !lines;
          flight_decision e.Entry.disk_blkno
        end
      done;
      (* Role switches fenced durable strictly before the Tail advance,
         exactly as in the live commit path. *)
      if !lines <> [] then begin
        Pmem.flush_lines pmem (List.sort_uniq compare !lines);
        Pmem.sfence pmem
      end;
      if tail <> head then begin
        Pmem.atomic_write8_int pmem ~off:layout.Layout.tail_off head;
        Pmem.persist pmem ~off:layout.Layout.tail_off ~len:8
      end
    end
  done;
  persist_seal pmem 0
[@@pmem.defer
  "every mutated range is persisted in-loop: role switches are fenced by the guarded \
   flush_lines+sfence (the guard `lines <> []` is true exactly when a switch was written, which \
   the syntactic dataflow cannot correlate), the Tail advance by its own persist, and the seal \
   retirement by persist_seal"]

(* Media without the shard directory magic is a plain unsharded Cache
   (the N=1 format above, or pre-sharding media): recover it as one
   shard.  Media with the magic carries the directory's shard count. *)
let is_sharded_media pmem =
  Pmem.size pmem >= 8 && Pmem.read_u64 pmem ~off:dir_off = magic

let recover_sharded ~flight_replay ~pmem ~disk ~clock ~metrics =
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Cache.Corrupt ("Tinca.Shard: " ^ m))) fmt in
  if Pmem.size pmem < header_bytes then corrupt "unformatted NVM (device smaller than the shard header)";
  let b = Pmem.read pmem ~off:dir_off ~len:64 in
  let nshards = Codec.get_u32 b 8 in
  if nshards < 2 || nshards > max_shards then
    corrupt "corrupt shard directory (nshards %d)" nshards;
  let span = span_of ~pmem ~nshards in
  Trace.begin_span ~clock "tinca.shard.recover";
  (* The cross-shard decision precedes every per-shard recovery: seal
     durable => roll the sealed transaction forward on all its shards;
     no seal => each shard rolls its own sub-commit back (Cache.recover's
     ring-range ∪ log-role revocation), so nothing of the transaction
     survives on any shard.  Either way, no partially committed
     multi-shard transaction can be observed after recovery. *)
  let seal = read_seal pmem in
  if seal <> 0 then begin
    Log.info (fun m -> m "sealed multi-shard transaction found (mask %#x): rolling forward" (seal_mask seal));
    Metrics.incr metrics "tinca.shard.roll_forwards" ~by:1;
    roll_forward ~pmem ~nshards ~span ~mask:(seal_mask seal) ~clock
  end;
  let caches =
    Array.init nshards (fun i ->
        let base = base_of ~span i in
        let c =
          Cache.recover_region ~flight_replay ~base ~mem_bytes:(base + span) ~pmem ~disk ~clock
            ~metrics ()
        in
        Cache.set_flight_shard c i;
        c)
  in
  Trace.end_span "tinca.shard.recover";
  { pmem; clock; metrics; caches; lanes = Array.make nshards 0.0; epoch = 0 }

let recover ?(flight_replay = true) ~pmem ~disk ~clock ~metrics () =
  if is_sharded_media pmem then recover_sharded ~flight_replay ~pmem ~disk ~clock ~metrics
  else
    let c = Cache.recover ~flight_replay ~pmem ~disk ~clock ~metrics () in
    { pmem; clock; metrics; caches = [| c |]; lanes = [| 0.0 |]; epoch = 0 }

(* --- block I/O ---------------------------------------------------------- *)

let read t blkno =
  let i = shard_of t blkno in
  exec t i (fun () -> Cache.read t.caches.(i) blkno)

let write_direct t blkno data =
  let i = shard_of t blkno in
  exec t i (fun () -> Cache.write_direct t.caches.(i) blkno data)

let contains t blkno = Cache.contains t.caches.(shard_of t blkno) blkno

let peek t blkno = Cache.peek t.caches.(shard_of t blkno) blkno

(* --- the striped commit scheduler --------------------------------------- *)

module Txn = struct
  type state = Running | Sealed | Finished

  type handle = {
    s : t;
    mutable subs : (int * Cache.Txn.handle) list; (* reversed creation order *)
    mutable state : state;
  }

  let init s =
    Trace.instant ~clock:s.clock "tinca.shard.txn.init";
    { s; subs = []; state = Running }

  let sub_for h i =
    match List.assoc_opt i h.subs with
    | Some sub -> sub
    | None ->
        let sub = Cache.Txn.init h.s.caches.(i) in
        h.subs <- (i, sub) :: h.subs;
        sub

  let add h blkno data =
    if h.state <> Running then invalid_arg "Tinca.Shard.Txn.add: transaction not running";
    let i = shard_of h.s blkno in
    let sub = sub_for h i in
    exec h.s i (fun () -> Cache.Txn.add sub blkno data)

  let block_count h =
    List.fold_left (fun acc (_, sub) -> acc + Cache.Txn.block_count sub) 0 h.subs

  let shard_count h = List.length h.subs

  (* Two-phase publish for a transaction spanning several shards:

     Phase 1  every shard stages its sub-commit (§4.4 steps 1–2 plus
              ring-slot staging; Cache.Txn.stage) — data, entries and
              slots are fenced durable everywhere, but no Head has
              moved, so a crash now revokes everything shard-locally.
     Phase 2  every shard advances its Head (Cache.Txn.publish).  A
              crash anywhere in this window — including between two
              Head advances — finds no seal, and recovery rolls every
              shard back: the published shards via their ring ranges,
              the rest via the log-role entry scan.
     Seal     one atomic cross-shard commit record, persisted after all
              Heads: from here the transaction is committed, and
              recovery rolls it forward instead.
     Phase 3  every shard finalizes (role switch fenced before its Tail
              advance), then the seal retires.

     A capacity rejection during phase 1 aborts the already-staged
     sub-commits (their slots are unpublished, so Cache.Txn.abort's
     staged-block revocation applies) and re-raises — all-or-nothing in
     the failure direction too. *)
  let commit_multi h subs =
    let s = h.s in
    let mask = List.fold_left (fun m (i, _) -> m lor (1 lsl i)) 0 subs in
    Trace.begin_span ~clock:s.clock "tinca.xcommit";
    Trace.attr "shards" (string_of_int (List.length subs));
    let staged = ref 0 in
    (try
       List.iter
         (fun (i, sub) ->
           Trace.begin_span ~clock:s.clock "tinca.xcommit.stage";
           Trace.attr "shard" (string_of_int i);
           exec s i (fun () -> Cache.Txn.stage sub);
           Trace.end_span "tinca.xcommit.stage";
           incr staged)
         subs
     with Cache.Transaction_too_large ->
       Trace.end_span "tinca.xcommit.stage";
       (* The rejecting sub-handle finished itself; earlier ones are
          staged-but-unpublished (abort revokes them), later ones still
          running (abort just drops them). *)
       List.iteri
         (fun k (i, sub) -> if k <> !staged then exec s i (fun () -> Cache.Txn.abort sub))
         subs;
       h.state <- Finished;
       Trace.end_span "tinca.xcommit";
       raise Cache.Transaction_too_large);
    barrier s;
    List.iter
      (fun (i, sub) ->
        Trace.begin_span ~clock:s.clock "tinca.xcommit.publish";
        Trace.attr "shard" (string_of_int i);
        exec s i (fun () -> Cache.Txn.publish sub);
        Trace.end_span "tinca.xcommit.publish")
      subs;
    Trace.begin_span ~clock:s.clock "tinca.xcommit.seal";
    exec_global s (fun () -> write_seal s mask);
    Trace.end_span "tinca.xcommit.seal";
    List.iter
      (fun (i, sub) ->
        Trace.begin_span ~clock:s.clock "tinca.xcommit.finalize";
        Trace.attr "shard" (string_of_int i);
        exec s i (fun () -> Cache.Txn.finalize sub);
        Trace.end_span "tinca.xcommit.finalize")
      subs;
    Trace.begin_span ~clock:s.clock "tinca.xcommit.retire";
    exec_global s (fun () -> clear_seal s);
    Trace.end_span "tinca.xcommit.retire";
    h.state <- Finished;
    Metrics.incr s.metrics "tinca.shard.multi_commits" ~by:1;
    Metrics.incr s.metrics "tinca.shard.multi_commit.shards" ~by:(List.length subs);
    Trace.end_span "tinca.xcommit"

  let commit h =
    if h.state <> Running then invalid_arg "Tinca.Shard.Txn.commit: transaction not running";
    let subs = List.rev h.subs in
    match subs with
    | [] ->
        h.state <- Finished;
        Metrics.incr h.s.metrics "tinca.commits" ~by:1
    | [ (i, sub) ] -> (
        (* Single-shard fast path: the plain §4.4 commit, operation for
           operation the unsharded cache — no seal, no extra fences.
           This is what makes N=1 reproduce single-ring numbers exactly. *)
        match exec h.s i (fun () -> Cache.Txn.commit sub) with
        | () -> h.state <- Finished
        | exception e ->
            h.state <- Finished;
            raise e)
    | subs -> commit_multi h subs

  let abort h =
    match h.state with
    | Finished -> invalid_arg "Tinca.Shard.Txn.abort: transaction already finished"
    | Sealed -> invalid_arg "Tinca.Shard.Txn.abort: transaction already sealed"
    | Running ->
        List.iter (fun (i, sub) -> exec h.s i (fun () -> Cache.Txn.abort sub)) h.subs;
        h.state <- Finished

  (* --- group commit (async commit, ISSUE 8) ----------------------------- *)

  (* [seal h] volatilely applies the whole transaction on every shard it
     touches (Cache.Txn.seal: admission, COW data stores, entry swings,
     ring-slot staging — no flush, no fence).  The facade's group
     committer later drains many sealed transactions with one
     [commit_group].  A capacity rejection on any shard unwinds the
     already-sealed sub-commits ([Cache.Txn.unseal]; their staged slots
     are the newest on their shards' rings because the facade seals
     transactions one at a time) and aborts the not-yet-sealed ones —
     all-or-nothing in the failure direction. *)
  let seal h =
    if h.state <> Running then invalid_arg "Tinca.Shard.Txn.seal: transaction not running";
    let subs = List.rev h.subs in
    if subs = [] then invalid_arg "Tinca.Shard.Txn.seal: empty transaction";
    let nsealed = ref 0 in
    (try
       List.iter
         (fun (i, sub) ->
           exec h.s i (fun () -> Cache.Txn.seal sub);
           incr nsealed)
         subs
     with Cache.Transaction_too_large ->
       (* The rejecting sub-handle finished itself; earlier subs are
          sealed (unseal revokes their volatile staging), later ones
          still running (abort just drops them). *)
       List.iteri
         (fun k (i, sub) ->
           if k < !nsealed then exec h.s i (fun () -> Cache.Txn.unseal sub)
           else if k > !nsealed then exec h.s i (fun () -> Cache.Txn.abort sub))
         subs;
       h.state <- Finished;
       raise Cache.Transaction_too_large);
    h.state <- Sealed

  let shard_mask h = List.fold_left (fun m (i, _) -> m lor (1 lsl i)) 0 h.subs

  (* Tag every sub-handle with the facade's durable-notification ticket
     id, so each shard's [Txn_seal] flight record names it. *)
  let set_flight_ticket h id =
    List.iter (fun (_, sub) -> Cache.Txn.set_flight_ticket sub id) h.subs
end

(* One durability sequence for a whole batch of sealed transactions —
   the group-commit analogue of [Txn.commit_multi]:

   Flush    each touched shard runs stages A–B plus its single Head
            advance over ALL its member sub-commits
            (Cache.Txn.flush_sealed): two fences and one Head persist
            per shard, however many transactions the batch holds.  A
            crash before a shard's Head advance revokes its
            sub-commits via the log-role entry scan; after, via the
            ring range — and with no seal yet, every other shard rolls
            back too, so the batch disappears as one unit.
   Seal     when the batch touches >= 2 shards, one cross-shard commit
            record over the union mask, persisted after all Heads —
            from here recovery rolls the entire batch forward on every
            shard instead.  Single-shard batches need no seal: their
            one Head persist is already the all-or-nothing pivot.
   Finalize each shard retires its members with one batched role
            switch and one Tail persist (Cache.Txn.finalize_sealed),
            then the seal (if any) retires.

   Under the planted [`Drop_durable_notify] fault the batch is
   published but neither sealed nor finalized — the lost-ack bug the
   crash sweep must catch (the caller still acknowledges durability). *)
let commit_group ?(cause = Flight.Barrier) s handles =
  match handles with
  | [] -> ()
  | handles ->
      List.iter
        (fun h ->
          if h.Txn.state <> Txn.Sealed then
            invalid_arg "Tinca.Shard.commit_group: transaction not sealed";
          if h.Txn.s != s then invalid_arg "Tinca.Shard.commit_group: mixed shard sets")
        handles;
      let groups = Array.make (nshards s) [] in
      List.iter
        (fun h ->
          List.iter (fun (i, sub) -> groups.(i) <- sub :: groups.(i)) (List.rev h.Txn.subs))
        handles;
      let group i = List.rev groups.(i) in
      let touched = List.filter (fun i -> groups.(i) <> []) (List.init (nshards s) Fun.id) in
      let mask = List.fold_left (fun m h -> m lor Txn.shard_mask h) 0 handles in
      let multi = List.length touched > 1 in
      List.iter
        (fun i ->
          Trace.begin_span ~clock:s.clock "tinca.gcommit.flush";
          Trace.attr "shard" (string_of_int i);
          exec s i (fun () -> Cache.Txn.flush_sealed ~cause (group i));
          Trace.end_span "tinca.gcommit.flush")
        touched;
      barrier s;
      if !fault = Some `Drop_durable_notify then
        List.iter (fun h -> h.Txn.state <- Txn.Finished) handles
      else begin
        if multi then begin
          Trace.begin_span ~clock:s.clock "tinca.gcommit.seal";
          exec_global s (fun () -> write_seal s mask);
          Trace.end_span "tinca.gcommit.seal"
        end;
        List.iter
          (fun i ->
            Trace.begin_span ~clock:s.clock "tinca.gcommit.finalize";
            Trace.attr "shard" (string_of_int i);
            exec s i (fun () -> Cache.Txn.finalize_sealed (group i));
            Trace.end_span "tinca.gcommit.finalize")
          touched;
        if multi then begin
          Trace.begin_span ~clock:s.clock "tinca.gcommit.retire";
          exec_global s (fun () -> clear_seal s);
          Trace.end_span "tinca.gcommit.retire"
        end;
        List.iter (fun h -> h.Txn.state <- Txn.Finished) handles;
        Metrics.incr s.metrics "tinca.shard.group_commits" ~by:1;
        Metrics.incr s.metrics "tinca.shard.group_commit.txns" ~by:(List.length handles)
      end

(* --- stats -------------------------------------------------------------- *)

type stats = {
  nshards : int;
  agg : Cache.stats;
      (* structural fields summed across shards; metric-derived totals
         (commits, aborts, revoked, recoveries) are registry-global;
         ring_high_water is the MAX across shards — per-ring peaks do
         not add up to a meaningful global peak. *)
  ring_high_water_per_shard : int array;
  multi_commits : int;
  seals : int;
  roll_forwards : int;
}

let stats t =
  let per = Array.map Cache.stats t.caches in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 per in
  let ratio a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b) in
  let capacity = sum (fun s -> s.Cache.capacity_blocks) in
  let dirty = sum (fun s -> s.Cache.dirty) in
  let read_hits = sum (fun s -> s.Cache.read_hits) in
  let read_misses = sum (fun s -> s.Cache.read_misses) in
  let write_hits = sum (fun s -> s.Cache.write_hits) in
  let write_misses = sum (fun s -> s.Cache.write_misses) in
  let agg =
    {
      per.(0) with
      Cache.capacity_blocks = capacity;
      cached = sum (fun s -> s.Cache.cached);
      free_data = sum (fun s -> s.Cache.free_data);
      free_entries = sum (fun s -> s.Cache.free_entries);
      dirty;
      dirty_ratio = (if capacity = 0 then 0.0 else float_of_int dirty /. float_of_int capacity);
      pinned = sum (fun s -> s.Cache.pinned);
      cow_pinned = sum (fun s -> s.Cache.cow_pinned);
      peak_cow = sum (fun s -> s.Cache.peak_cow);
      read_hits;
      read_misses;
      read_hit_ratio = ratio read_hits read_misses;
      write_hits;
      write_misses;
      write_hit_ratio = ratio write_hits write_misses;
      ring_slots = sum (fun s -> s.Cache.ring_slots);
      ring_in_flight = sum (fun s -> s.Cache.ring_in_flight);
      ring_high_water =
        Array.fold_left (fun a s -> max a s.Cache.ring_high_water) 0 per;
    }
  in
  {
    nshards = nshards t;
    agg;
    ring_high_water_per_shard = Array.map (fun s -> s.Cache.ring_high_water) per;
    multi_commits = Metrics.get t.metrics "tinca.shard.multi_commits";
    seals = Metrics.get t.metrics "tinca.shard.seals";
    roll_forwards = Metrics.get t.metrics "tinca.shard.roll_forwards";
  }

let stats_kv st =
  let base =
    List.map
      (fun (k, v) -> if k = "ring_high_water" then ("ring_high_water_max", v) else (k, v))
      (Cache.stats_kv st.agg)
  in
  (("nshards", string_of_int st.nshards) :: base)
  @ Array.to_list
      (Array.mapi
         (fun i v -> (Printf.sprintf "ring_high_water_shard%d" i, string_of_int v))
         st.ring_high_water_per_shard)
  @ [
      ("multi_shard_commits", string_of_int st.multi_commits);
      ("cross_shard_seals", string_of_int st.seals);
      ("seal_roll_forwards", string_of_int st.roll_forwards);
    ]

(* --- flight recorder / forensics surface --------------------------------- *)

let flight_enabled t = Array.exists Cache.flight_enabled t.caches

(* Per-shard survivor scans from the last recovery, shaped for
   [Tinca_obs.Forensics.build].  Shards recovered without a flight ring
   (or before any recovery) contribute an empty track. *)
let flight_scans t =
  Array.map
    (fun c -> match Cache.flight_scan_result c with Some r -> r | None -> ([], 0))
    t.caches

(* Region-attributed NVM wear.  N=1: the plain per-region table.  N>1:
   the shard header (directory + seal lines) plus every shard's regions,
   names prefixed "s<i>.". *)
let region_wear t =
  if Array.length t.caches = 1 then Cache.region_wear t.caches.(0)
  else
    ( "header",
      Pmem.wear_sum_in t.pmem ~off:0 ~len:header_bytes,
      Pmem.wear_max_in t.pmem ~off:0 ~len:header_bytes )
    :: List.concat
         (List.mapi
            (fun i c ->
              List.map (fun (n, s, m) -> (Printf.sprintf "s%d.%s" i n, s, m)) (Cache.region_wear c))
            (Array.to_list t.caches))

(* --- invariant audit ----------------------------------------------------- *)

let check_invariants t =
  (* One-shard media has no header, hence no seal word to audit. *)
  if Array.length t.caches > 1 && read_seal t.pmem <> 0 then
    raise
      (Cache.Invariant_violation "Tinca.Shard invariant: cross-shard seal set outside a commit");
  Array.iter Cache.check_invariants t.caches
