(** Paging commit scheme (ISSUE 10): COW page remapping through a
    persistent indirection table, the ablation counterpart of the
    logging (ring) scheme.

    Every transactional write is COWed into a free NVM page frame and
    staged by one 16 B atomic swing of the page's indirection-table
    entry under the shard's next epoch; the commit point is a single
    8 B atomic swing of the shard's persistent epoch word.  No ring, no
    role switch: 2 sfences per single-shard commit of any size.
    Multi-shard commits are sealed by the same [mask<<32|epoch] seal
    word the striped logging scheduler uses.  Recovery rebuilds the
    volatile index from the table, rolling staged entries back (or, when
    a durable seal directs it, forward).

    Per-shard media layout:
    [superblock | epoch word | flight ring | indirection table | page pool].
    The table only holds dirty pages; clean cached blocks are volatile
    only. *)

type t

type config = {
  block_size : int;  (** page size; positive multiple of 64 *)
  flight_slots : int;  (** 64 B flight records per shard; 0 disables *)
  headroom : int;
      (** free frames admission keeps in reserve beyond a transaction's
          own need; >= 0 *)
}

val default_config : config

(** Media magics: the single-shard superblock and the multi-shard
    directory, distinct from the logging scheme's so recovery can
    discriminate the scheme from byte 0. *)
val super_magic : int64

val dir_magic : int64

exception Corrupt of string
exception Transaction_too_large
exception Invariant_violation of string

(** Would this device host a paging format?  The validation
    {!format} performs, without touching media (for [Config.validate]). *)
val check_geometry :
  nshards:int -> pmem_bytes:int -> block_size:int -> flight_slots:int -> (unit, string) result

(** [format ~nshards ~config ~pmem ~disk ~clock ~metrics] initializes
    the whole device for paging: directory header (when [nshards > 1]),
    per-shard superblock, zero epoch, durably zeroed table and flight
    ring.  Raises [Invalid_argument] on bad geometry. *)
val format :
  nshards:int ->
  config:config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

(** [recover ~pmem ~disk ~clock ~metrics ()] discriminates the media by
    magic, validates the indirection table against itself (frame bounds,
    duplicate mappings, epoch sanity — a torn swing is detected, not
    trusted; raises [Corrupt]), resolves the staged generation and
    rebuilds the volatile index. *)
val recover :
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  unit ->
  t

val nshards : t -> int
val block_size : t -> int

(** Same pure striping function as the logging scheduler. *)
val stripe : nshards:int -> int -> int

module Txn : sig
  type handle

  val init : t -> handle

  (** Buffer one whole-block write (volatile until commit).  Last write
      to a block wins. *)
  val add : handle -> int -> bytes -> unit

  val block_count : handle -> int
  val shard_count : handle -> int

  (** Publish the write-set: COW pages + entry swings, one stage fence,
      then the epoch swing(s).  Raises [Transaction_too_large] (after
      full rollback) when the pool cannot host the transaction. *)
  val commit : ?cause:Tinca_obs.Flight.cause -> handle -> unit

  val abort : handle -> unit
end

val read : t -> int -> bytes
val write_direct : t -> int -> bytes -> unit

(** Post-recovery / test probe: the cached content of a block, if cached. *)
val peek : t -> int -> bytes option

val contains : t -> int -> bool

(** Write every dirty page back to disk and durably drop its entry. *)
val flush_all : t -> unit

val stats_kv : t -> (string * string) list
val write_hit_rate : t -> float
val txn_size_histogram : t -> Tinca_util.Histogram.t

(** Per-region (name, wear_sum, wear_max) rows: super / epoch / flight /
    table / pool, prefixed [s<i>.] on sharded media. *)
val region_wear : t -> (string * int * int) list

(** DRAM/NVM cross-checks; raises [Invariant_violation]. *)
val check_invariants : t -> unit

(** psan's region classifier input: absolute offsets of one shard's
    epoch line, flight ring, indirection table and page pool. *)
type region_layout = {
  r_base : int;
  r_epoch_off : int;
  r_flight_off : int;
  r_flight_bytes : int;
  r_table_off : int;
  r_table_bytes : int;
  r_pool_off : int;
  r_pool_bytes : int;
  r_total : int;
}

val region_layouts : t -> region_layout list

(** Post-crash flight-recorder scans per shard (records, torn count),
    shaped for {!Tinca_obs.Forensics.build}. *)
val flight_scans : t -> ((int * Tinca_obs.Flight.event) list * int) array

val flight_enabled : t -> bool

(** Test-only: [`Torn_swing] splits the 16 B table swing into two 8 B
    halves with the first made durable alone — the planted bug class the
    crash checker and psan must detect.  Global; reset to [None]. *)
val set_fault : [ `Torn_swing ] option -> unit
