(** First-class commit-scheme interface (ISSUE 10): the single axis the
    logging vs. paging ablation varies — how a write-set becomes durable
    atomically, and how a crashed medium is rebuilt — extracted into a
    module type the facade and the checkers program against.

    {!Logging} is pure delegation to the {!Shard} ring pipeline
    (media- and cost-identical to the pre-interface code, pinned by
    test); {!Paging_impl} delegates to the COW/indirection-table engine
    in {!Paging}. *)

module type S = sig
  type t
  type txn

  val name : string
  val nshards : t -> int

  (** {2 The commit protocol} *)

  val init_txn : t -> txn

  (** Buffer one whole-block write into the open transaction. *)
  val stage : txn -> int -> bytes -> unit

  val block_count : txn -> int

  (** Make the write-set durable and visible, atomically.  Synchronous. *)
  val publish : ?cause:Tinca_obs.Flight.cause -> txn -> unit

  val abort : txn -> unit

  (** {2 Block I/O outside transactions} *)

  val read : t -> int -> bytes
  val write_direct : t -> int -> bytes -> unit
  val peek : t -> int -> bytes option
  val contains : t -> int -> bool

  (** Write every dirty block back to disk (decommissioning). *)
  val flush_all : t -> unit

  (** {2 Introspection} *)

  val stats_kv : t -> (string * string) list
  val region_wear : t -> (string * int * int) list
  val check_invariants : t -> unit
  val flight_enabled : t -> bool
  val flight_scans : t -> ((int * Tinca_obs.Flight.event) list * int) array
end

module Logging : S with type t = Shard.t and type txn = Shard.Txn.handle
module Paging_impl : S with type t = Paging.t and type txn = Paging.Txn.handle

(** A scheme instance packed behind the interface. *)
type packed = Packed : (module S with type t = 'a and type txn = 'b) * 'a -> packed

type packed_txn = Txn : (module S with type t = 'a and type txn = 'b) * 'b -> packed_txn

(** Transparent view for callers needing scheme-specific surface (group
    commit is logging-only; the paging region layouts feed psan). *)
type engine = Logging_engine of Shard.t | Paging_engine of Paging.t

val pack : engine -> packed
val scheme_name : engine -> string

(** {2 Packed forwarding helpers} *)

val init_txn : packed -> packed_txn
val stage : packed_txn -> int -> bytes -> unit
val block_count : packed_txn -> int
val publish : ?cause:Tinca_obs.Flight.cause -> packed_txn -> unit
val abort : packed_txn -> unit
val read : packed -> int -> bytes
val write_direct : packed -> int -> bytes -> unit
val peek : packed -> int -> bytes option
val contains : packed -> int -> bool
val flush_all : packed -> unit
val stats_kv : packed -> (string * string) list
val region_wear : packed -> (string * int * int) list
val check_invariants : packed -> unit
val flight_enabled : packed -> bool
val flight_scans : packed -> ((int * Tinca_obs.Flight.event) list * int) array
val name : packed -> string
val nshards : packed -> int

(** Re-attach crashed media, dispatching on the scheme magic in its
    first 8 bytes: the paging magics go to {!Paging.recover}, anything
    else to {!Shard.recover}.  [flight_replay] is forwarded to the
    logging recovery only. *)
val recover :
  ?flight_replay:bool ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  unit ->
  engine
