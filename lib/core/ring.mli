(** The fine-grained ring buffer that regulates committing transactions
    (paper §4.4).

    Replaces JBD2's descriptor and commit blocks: each element is one
    8-byte on-disk block number; [Head] and [Tail] are persistent 8-byte
    monotonic counters (slot = counter mod nslots) updated with atomic
    writes followed by clflush + sfence.  [Head = Tail] means no
    transaction is in flight; the half-open range [Tail, Head) lists the
    blocks of the in-flight transaction. *)

type t

(** Attach to (already formatted or zeroed) media. *)
val attach : pmem:Tinca_pmem.Pmem.t -> layout:Layout.t -> t

val slots : t -> int
val head : t -> int
val tail : t -> int

(** Blocks recorded in the in-flight transaction. *)
val in_flight : t -> int

(** Peak {!in_flight} occupancy observed since attach/format — the ring
    sizing signal surfaced by [Cache.stats].  Volatile: resets on
    re-attach. *)
val high_water : t -> int

(** [record t blkno] writes [blkno] at the Head slot (atomic 8 B +
    persist) and then advances Head (atomic 8 B + persist) — steps 2–3 of
    the commit protocol.  Raises [Invalid_argument] if the ring is full. *)
val record : t -> int -> unit

(** [record_batch t blknos] — group-commit variant of {!record}, step 2
    for a whole transaction: stage one slot per block starting at Head
    (atomic 8 B writes), flush each dirtied slot line once, fence.  The
    slots are durable but Head does not cover them yet, so they stay
    invisible to {!pending_blknos} and to recovery until {!publish}.
    Raises [Invalid_argument] if the batch does not fit. *)
val record_batch : t -> int list -> unit

(** [stage_batch t blknos] — the volatile half of {!record_batch} for
    the multi-transaction group committer: stage one slot per block past
    Head and any previously staged slots (atomic 8 B writes, {e no}
    flush, {e no} fence) and return the dirtied line indices.  The
    caller folds many transactions' lines into one [Pmem.flush_lines] +
    fence before a single {!publish} covering them all.  Staged-but-
    unpublished slots are volatile batch state: {!publish} consumes
    them, {!rewind_head}/{!reload}/{!format} discard them, and the
    fullness checks account for them.  Raises [Invalid_argument] if the
    batch does not fit. *)
val stage_batch : t -> int list -> int list

(** Slots written by {!stage_batch} but not yet covered by {!publish}. *)
val staged : t -> int

(** [unstage t n] drops the newest [n] staged slots (volatile; the seal
    unwinding path).  Raises [Invalid_argument] when [n] exceeds the
    staged count. *)
val unstage : t -> int -> unit

(** [publish t n] — advance Head over [n] staged slots with a single
    atomic write + persist (step 3 for the whole batch).  Must follow a
    {!record_batch} of at least [n] slots; no-op when [n = 0]. *)
val publish : t -> int -> unit

(** Persistently set Tail := Head (the commit point, step 5). *)
val commit_point : t -> unit

(** Persistently set Head := Tail (after an abort's revocations). *)
val rewind_head : t -> unit

(** Disk block numbers in [Tail, Head), oldest first (recovery scan). *)
val pending_blknos : t -> int list

(** Re-read Head/Tail from media (after a crash). *)
val reload : t -> unit

(** Zero both pointers persistently (formatting). *)
val format : t -> unit
