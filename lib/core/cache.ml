open Tinca_sim
module Pmem = Tinca_pmem.Pmem

let log_src = Logs.Src.create "tinca.cache" ~doc:"Tinca transactional NVM cache"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Disk = Tinca_blockdev.Disk
module Lru = Tinca_cachelib.Lru
module Free_monitor = Tinca_cachelib.Free_monitor
module Histogram = Tinca_util.Histogram
module Trace = Tinca_obs.Trace
module Flight = Tinca_obs.Flight

type mode = Write_back | Write_through

type pipeline = Per_block | Batched

type config = {
  block_size : int;
  ring_slots : int;
  mode : mode;
  clean_threshold : float;
      (* dirty fraction of the cache beyond which the background flusher
         pre-cleans oldest dirty buffer blocks (keeping them cached), so
         replacement usually finds clean victims.  1.0 disables it. *)
  alloc_policy : Free_monitor.policy;
  commit_pipeline : pipeline;
      (* Batched (default): the staged group commit — all COW data and
         entry lines under one fence, all ring slots under one more, one
         Head persist; O(1) fences per commit.  Per_block: the paper's
         literal per-block protocol (~4 fences per block), kept for the
         fig_commit_batch ablation. *)
  flight_slots : int;
      (* NVM-resident flight-recorder records (64 B each) reserved in the
         layout; 0 disables the recorder entirely (ISSUE 9).  Recorded in
         the superblock so recovery finds the same geometry. *)
}

let default_config =
  { block_size = 4096; ring_slots = 131072; mode = Write_back; clean_threshold = 0.7;
    alloc_policy = Free_monitor.Lifo; commit_pipeline = Batched; flight_slots = 0 }

exception Transaction_too_large

exception Cache_exhausted
(** Replacement found no victim: every cached block is pinned by the
    in-flight transaction.  [Txn.commit] maps this to
    {!Transaction_too_large} after rolling the partial commit back. *)

exception Corrupt of string
(** Recovery rejected the media: unformatted NVM, corrupt superblock
    geometry, or an entry table that contradicts itself.  Typed (not
    [Failure]) so callers can tell "the medium is bad" from an
    arbitrary internal error; the facade maps it to
    [Tinca.Unformatted]. *)

exception Invariant_violation of string
(** An internal-invariant audit failed ([check_invariants], or a
    bookkeeping structure caught mid-corruption): a programming error,
    never an API or media error.  Typed (not [Failure]) so the lockstep
    sweep and the crash checker can key on the audit outcome without
    pattern-matching exception payloads of unrelated [Failure]s. *)

let () =
  Printexc.register_printer (function
    | Corrupt m -> Some (Printf.sprintf "Tinca_core.Cache.Corrupt(%S)" m)
    | Invariant_violation m -> Some (Printf.sprintf "Tinca_core.Cache.Invariant_violation(%S)" m)
    | _ -> None)

(* DRAM-side bookkeeping for one cached disk block (§4.6: hash table +
   LRU list, reconstructible from the persistent entry table). *)
type info = {
  disk_blkno : int;
  entry_idx : int;
  mutable cur : int;
  mutable prev : int option;
  mutable role_log : bool;
  mutable dirty : bool;
  mutable pre_dirty : bool;
      (* dirty bit as of just before the in-flight COW update; meaningful
         only while [role_log].  In-process revocation restores it, so
         aborting a transaction over a clean cached block does not turn
         the block spuriously dirty.  Post-crash recovery cannot read it
         back from media (the entry's M bit was overwritten by the COW
         update), so recovered infos conservatively set it to [true]. *)
  mutable txn_pinned : bool;
      (* DRAM-only: block is staged in the in-flight group commit, so
         replacement must not victimize it during the commit's own
         allocation pass (before [role_log] starts protecting it). *)
  mutable node : info Lru.node option;
}

type t = {
  cfg : config;
  layout : Layout.t;
  pmem : Pmem.t;
  disk : Disk.t;
  clock : Clock.t;
  metrics : Metrics.t;
  cpu : Latency.cpu;
  ring : Ring.t;
  index : (int, info) Hashtbl.t;
  lru : info Lru.t;
  free_data : Free_monitor.t;
  free_entries : Free_monitor.t;
  txn_sizes : Histogram.t;
  mutable pinned : int; (* infos currently in log role *)
  mutable dirty_count : int;
  mutable cow_pinned : int; (* NVM blocks held as previous versions *)
  mutable peak_cow : int;
  mutable committing : bool;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  (* Flight recorder (ISSUE 9): volatile cursor over the NVM record
     ring, the record lines written since the last commit-path fence
     (folded into that fence, never fenced on their own), the drain
     counter that numbers batches, and the records recovered by the last
     [recover_region] scan. *)
  flight : Flight.cursor option;
  mutable flight_dirty : int list;
  mutable flight_batch : int;
  mutable flight_cur_batch : int;
  mutable flight_shard : int;
  mutable flight_scan : ((int * Flight.event) list * int) option;
}

let layout t = t.layout
let config t = t.cfg

(* --- flight recorder (ISSUE 9) ----------------------------------------- *)

let flight_enabled t = t.flight <> None
let set_flight_shard t s = t.flight_shard <- s
let flight_scan_result t = t.flight_scan

(* The batch id the NEXT drain of this cache will carry — the standing
   batch facade-level seal records must point at. *)
let flight_next_batch t = t.flight_batch

(* Volatile store of one 64 B record (exactly one line): no flush, no
   fence — the dirtied line waits in [flight_dirty] for the commit
   path's next fence stage.  Restores the pmem call-site label so the
   sanitizer keeps attributing the surrounding protocol step. *)
let flight_note t ?(batch = -1) ?(cause = Flight.Sync) ?(a = 0) ?(b = 0) ?(c = 0) ?(d = 0) kind =
  match t.flight with
  | None -> ()
  | Some cur ->
      let site = Pmem.site t.pmem in
      Pmem.set_site t.pmem "flight.record";
      let ev =
        { Flight.kind; shard = t.flight_shard; cause; a; b; c; d; batch;
          t_ns = int_of_float (Clock.now_ns t.clock) }
      in
      let off = Layout.flight_slot_off t.layout cur.Flight.seq in
      Pmem.write t.pmem ~off (Flight.encode ~seq:cur.Flight.seq ev);
      cur.Flight.seq <- cur.Flight.seq + 1;
      t.flight_dirty <- (off / Pmem.line_size) :: t.flight_dirty;
      Metrics.incr t.metrics "tinca.flight.records" ~by:1;
      Pmem.set_site t.pmem site
[@@pmem.defer
  "a flight record is deliberately left unflushed: the dirtied line is parked in flight_dirty \
   until flight_flush_into_fence folds it into the commit path's next existing flush+fence stage \
   (zero added fences); a record torn by a crash before that fence fails its CRC and is dropped \
   by Flight.scan — detected, not trusted"]

(* Record lines awaiting a fence, surrendered to the caller (who folds
   them into an imminent flush_lines batch). *)
let flight_take t =
  match t.flight_dirty with
  | [] -> []
  | lines ->
      t.flight_dirty <- [];
      lines

(* clflush the pending record lines into the caller's imminent fence —
   never a fence of its own, so the commit path's sfence count is
   untouched by the recorder. *)
let flight_flush_into_fence t =
  List.iter
    (fun l -> Pmem.clflush t.pmem ~off:(l * Pmem.line_size) ~len:Pmem.line_size)
    (flight_take t)

(* --- superblock ------------------------------------------------------- *)

let magic = 0x314143_4E49_54L (* "TINCA1" little-endian-ish tag *)

let write_super t =
  Pmem.set_site t.pmem "cache.super";
  let b = Bytes.make 64 '\000' in
  Bytes.set_int64_le b 0 magic;
  Tinca_util.Codec.set_u32 b 8 t.cfg.block_size;
  Tinca_util.Codec.set_u32 b 12 t.cfg.ring_slots;
  Tinca_util.Codec.set_u32 b 16 t.layout.Layout.nblocks;
  (* Flight-recorder geometry (0 = recorder off).  Legacy superblocks
     carry zeros here, so pre-recorder media recovers unchanged. *)
  Tinca_util.Codec.set_u32 b 20 t.layout.Layout.flight_slots;
  Pmem.write t.pmem ~off:t.layout.Layout.super_off b;
  Pmem.persist t.pmem ~off:t.layout.Layout.super_off ~len:64

(* Read and *validate* the superblock: a corrupt one must surface as a
   clean "unformatted/corrupt NVM" failure, never as a division by zero
   or an absurd layout handed to the rest of recovery.  [base]/[mem_bytes]
   bound the region this cache may own (a shard of a partitioned device);
   they default to the whole device. *)
let read_super ~base ~mem_bytes pmem =
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt ("Tinca.Cache: " ^ m))) fmt in
  if mem_bytes < base + 64 || mem_bytes > Pmem.size pmem then
    corrupt "unformatted NVM (region smaller than a superblock)";
  let b = Pmem.read pmem ~off:base ~len:64 in
  if Bytes.get_int64_le b 0 <> magic then corrupt "unformatted NVM (bad magic)";
  let block_size = Tinca_util.Codec.get_u32 b 8 in
  let ring_slots = Tinca_util.Codec.get_u32 b 12 in
  let nblocks = Tinca_util.Codec.get_u32 b 16 in
  let flight_slots = Tinca_util.Codec.get_u32 b 20 in
  if block_size <= 0 || block_size mod 64 <> 0 then
    corrupt "corrupt superblock (block_size %d)" block_size;
  if ring_slots <= 0 then corrupt "corrupt superblock (ring_slots %d)" ring_slots;
  if nblocks <= 0 then corrupt "corrupt superblock (nblocks %d)" nblocks;
  if flight_slots < 0 then corrupt "corrupt superblock (flight_slots %d)" flight_slots;
  let layout =
    try Layout.compute_flight ~flight_slots ~base ~pmem_bytes:mem_bytes ~block_size ~ring_slots
    with Invalid_argument _ -> corrupt "corrupt superblock (geometry does not fit the device)"
  in
  if layout.Layout.nblocks <> nblocks then
    corrupt "corrupt superblock (stored %d blocks, device fits %d)" nblocks
      layout.Layout.nblocks;
  layout

(* --- entry I/O --------------------------------------------------------- *)

(* Create or modify a cache entry with a 16 B atomic write + clflush +
   sfence, the paper's fine-grained metadata update. *)
let write_entry t idx e =
  let off = Layout.entry_off t.layout idx in
  Pmem.atomic_write16 t.pmem ~off (Entry.encode e);
  Pmem.clflush t.pmem ~off ~len:Entry.size;
  Pmem.sfence t.pmem

(* Batched entry updates (role switches, background cleaning): write all
   the 16 B entries atomically first, then flush each dirtied cache line
   exactly once, then fence.  Four entries share a 64 B line, so
   interleaving write/clflush per entry both stores into flush-pending
   lines (adversarial write-back resolution) and starts up to four medium
   write-backs per line where one suffices — the persistence sanitizer's
   persist-race / redundant-flush finding on this path. *)
let write_entries_batched t updates =
  match updates with
  | [] -> ()
  | updates ->
      let lines = Hashtbl.create 8 in
      List.iter
        (fun (idx, e) ->
          let off = Layout.entry_off t.layout idx in
          Pmem.atomic_write16 t.pmem ~off (Entry.encode e);
          Hashtbl.replace lines (off / Pmem.line_size) ())
        updates;
      Hashtbl.iter
        (fun line () ->
          Pmem.clflush t.pmem ~off:(line * Pmem.line_size) ~len:Pmem.line_size)
        lines;
      Pmem.sfence t.pmem

let entry_at t idx = Entry.decode (Pmem.read t.pmem ~off:(Layout.entry_off t.layout idx) ~len:Entry.size)

let entry_of_info ~role info =
  {
    Entry.valid = true;
    role;
    modified = info.dirty;
    disk_blkno = info.disk_blkno;
    prev = info.prev;
    cur = info.cur;
  }

(* --- allocation & replacement (§4.6) ----------------------------------- *)

let node_exn info =
  match info.node with
  | Some n -> n
  | None -> raise (Invariant_violation "Tinca.Cache: info without LRU node")

(* All dirty-bit transitions go through here so the background flusher
   can watch the dirty population. *)
let note_dirty t info v =
  if info.dirty <> v then begin
    info.dirty <- v;
    t.dirty_count <- t.dirty_count + (if v then 1 else -1)
  end

let read_data_block t nvm_blk =
  Pmem.read t.pmem ~off:(Layout.data_block_off t.layout nvm_blk) ~len:t.cfg.block_size

let writeback ?(background = false) t info =
  let data = read_data_block t info.cur in
  Disk.write_block ~background t.disk info.disk_blkno data;
  Metrics.incr t.metrics "tinca.writebacks" ~by:1

(* Victim selection: LRU order, skipping every block involved in the
   committing transaction: log role pins both its current and previous
   NVM blocks (because [prev] is only non-None while the role is log),
   and [txn_pinned] protects staged blocks during the group commit's
   allocation pass, before their role has switched to log. *)
let evict_one t =
  match Lru.find_from_lru t.lru ~f:(fun info -> not (info.role_log || info.txn_pinned)) with
  | None -> raise Cache_exhausted
  | Some node ->
      let info = Lru.value node in
      if info.dirty then begin
        writeback t info;
        note_dirty t info false
      end;
      (* Persistently invalidate the entry so recovery cannot resurrect
         a block whose NVM space is about to be reused. *)
      Pmem.set_site t.pmem "cache.evict";
      write_entry t info.entry_idx
        { Entry.valid = false; role = Buffer; modified = false; disk_blkno = 0; prev = None; cur = 0 };
      Lru.remove t.lru node;
      info.node <- None;
      Hashtbl.remove t.index info.disk_blkno;
      Free_monitor.free t.free_data info.cur;
      Free_monitor.free t.free_entries info.entry_idx;
      Metrics.incr t.metrics "tinca.evictions" ~by:1

let rec alloc_data t =
  match Free_monitor.alloc t.free_data with
  | Some i -> i
  | None ->
      evict_one t;
      alloc_data t

let rec alloc_entry t =
  match Free_monitor.alloc t.free_entries with
  | Some i -> i
  | None ->
      evict_one t;
      alloc_entry t

(* Background flusher: when the dirty fraction exceeds the threshold,
   write the oldest dirty buffer blocks back using background device time
   (they stay cached, marked clean persistently), elevator-sorted by home
   block number.  Keeps replacement from stalling on dirty victims. *)
let maybe_clean t =
  let high =
    int_of_float (t.cfg.clean_threshold *. float_of_int t.layout.Layout.nblocks)
  in
  if t.dirty_count > high then begin
    Trace.begin_span ~clock:t.clock "tinca.bg_clean";
    let low = max 0 (high * 7 / 8) in
    let budget = ref (t.dirty_count - low) in
    let victims = ref [] in
    let rec collect node_opt =
      if !budget > 0 then
        match node_opt with
        | None -> ()
        | Some node ->
            let info = Lru.value node in
            if info.dirty && not info.role_log then begin
              victims := info :: !victims;
              decr budget
            end;
            collect (Lru.next node)
    in
    collect (Lru.lru t.lru);
    Pmem.set_site t.pmem "cache.bg_clean";
    let sorted = List.sort (fun a b -> compare a.disk_blkno b.disk_blkno) !victims in
    let updates =
      List.map
        (fun info ->
          writeback ~background:true t info;
          note_dirty t info false;
          Metrics.incr t.metrics "tinca.cleaned" ~by:1;
          (info.entry_idx, entry_of_info ~role:Entry.Buffer info))
        sorted
    in
    write_entries_batched t updates;
    Trace.end_span "tinca.bg_clean"
  end

(* --- construction ------------------------------------------------------ *)

let make_t ~config:cfg ~layout ~pmem ~disk ~clock ~metrics =
  {
    cfg;
    layout;
    pmem;
    disk;
    clock;
    metrics;
    cpu = Latency.default_cpu;
    ring = Ring.attach ~pmem ~layout;
    index = Hashtbl.create 4096;
    lru = Lru.create ();
    free_data = Free_monitor.create ~policy:cfg.alloc_policy ~n:layout.Layout.nblocks ();
    free_entries = Free_monitor.create ~n:layout.Layout.nblocks ();
    txn_sizes = Histogram.create ();
    pinned = 0;
    dirty_count = 0;
    cow_pinned = 0;
    peak_cow = 0;
    committing = false;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    flight =
      (if layout.Layout.flight_slots > 0 then Some (Flight.cursor ~slots:layout.Layout.flight_slots)
       else None);
    flight_dirty = [];
    flight_batch = 0;
    flight_cur_batch = -1;
    flight_shard = 0;
    flight_scan = None;
  }

let format_region ~base ~mem_bytes ~config:cfg ~pmem ~disk ~clock ~metrics =
  let layout =
    Layout.compute_flight ~flight_slots:cfg.flight_slots ~base ~pmem_bytes:mem_bytes
      ~block_size:cfg.block_size ~ring_slots:cfg.ring_slots
  in
  if Disk.block_size disk <> cfg.block_size then
    invalid_arg "Tinca.Cache.format: disk block size mismatch";
  let t = make_t ~config:cfg ~layout ~pmem ~disk ~clock ~metrics in
  (* Zero the entry table persistently, then the pointers and superblock. *)
  Pmem.set_site pmem "cache.format";
  Pmem.fill pmem ~off:layout.Layout.entries_off
    ~len:(layout.Layout.nblocks * Entry.size)
    '\000';
  Pmem.persist pmem ~off:layout.Layout.entries_off ~len:(layout.Layout.nblocks * Entry.size);
  (* Zero the flight ring so every slot scans as empty, not torn. *)
  if layout.Layout.flight_slots > 0 then begin
    Pmem.fill pmem ~off:layout.Layout.flight_off
      ~len:(layout.Layout.flight_slots * Layout.flight_record_size)
      '\000';
    Pmem.persist pmem ~off:layout.Layout.flight_off
      ~len:(layout.Layout.flight_slots * Layout.flight_record_size)
  end;
  Ring.format t.ring;
  write_super t;
  t

let format ~config ~pmem ~disk ~clock ~metrics =
  format_region ~base:0 ~mem_bytes:(Pmem.size pmem) ~config ~pmem ~disk ~clock ~metrics

(* --- revocation (shared by abort and recovery, §4.5) -------------------- *)

(* Undo one block of the in-flight transaction using the DRAM info (which
   mirrors the media entry).

   [force] distinguishes the two revocation sources of §4.5: blocks named
   in the ring range [Tail, Head) are revoked unconditionally — the Head
   advance that put them in range is persisted strictly after their new
   entry, so whatever entry we see (log, or buffer when a role-switch
   flush happened to complete before the crash) is the in-flight
   transaction's version.  Blocks found only by the full entry scan are
   revoked when still in log role. *)
let revoke_block ?(force = false) t blkno =
  match Hashtbl.find_opt t.index blkno with
  | None -> () (* entry write never became durable: nothing to undo *)
  | Some info ->
      if force || info.role_log then begin
        info.txn_pinned <- false;
        Pmem.set_site t.pmem "cache.revoke";
        (match info.prev with
        | Some p ->
            (* Roll back to the previous version, restoring the dirty bit
               the block had before the COW update.  For in-process aborts
               [pre_dirty] is exact, so rolling back over a clean cached
               block does not schedule a spurious disk writeback; recovered
               infos carry the conservative [pre_dirty = true] because the
               pre-transaction M bit is unrecoverable from media. *)
            Free_monitor.free t.free_data info.cur;
            info.cur <- p;
            info.prev <- None;
            t.cow_pinned <- t.cow_pinned - 1;
            note_dirty t info info.pre_dirty;
            if info.role_log then begin
              info.role_log <- false;
              t.pinned <- t.pinned - 1
            end;
            write_entry t info.entry_idx (entry_of_info ~role:Entry.Buffer info)
        | None ->
            (* Write miss with no prior version: delete block and entry. *)
            note_dirty t info false;
            write_entry t info.entry_idx
              { Entry.valid = false; role = Buffer; modified = false; disk_blkno = 0; prev = None; cur = 0 };
            (match info.node with Some node -> Lru.remove t.lru node | None -> ());
            info.node <- None;
            Hashtbl.remove t.index blkno;
            Free_monitor.free t.free_data info.cur;
            Free_monitor.free t.free_entries info.entry_idx;
            if info.role_log then begin
              info.role_log <- false;
              t.pinned <- t.pinned - 1
            end);
        Metrics.incr t.metrics "tinca.revoked" ~by:1
      end

let recover_region ?(flight_replay = true) ~base ~mem_bytes ~pmem ~disk ~clock ~metrics () =
  let layout = read_super ~base ~mem_bytes pmem in
  let block_size = layout.Layout.block_size and ring_slots = layout.Layout.ring_slots in
  if Disk.block_size disk <> block_size then
    raise (Corrupt "Tinca.Cache.recover: disk block size mismatch");
  let cfg =
    { default_config with block_size; ring_slots; flight_slots = layout.Layout.flight_slots }
  in
  let t = make_t ~config:cfg ~layout ~pmem ~disk ~clock ~metrics in
  Trace.begin_span ~clock "tinca.recover";
  (* Flight recorder: capture the surviving pre-crash records BEFORE any
     recovery action overwrites ring slots, then resume the sequence
     past the newest survivor so post-recovery records keep the total
     order.  [flight_replay = false] skips the scan (the dossier) but
     changes nothing else — the recovery-semantics-unchanged pin in
     check-flight holds recovery byte-identical either way. *)
  (match t.flight with
  | Some cur when flight_replay ->
      Trace.begin_span ~clock "tinca.recover.flight_scan";
      let records, torn =
        Flight.scan ~slots:layout.Layout.flight_slots ~read:(fun i ->
            Pmem.read pmem
              ~off:(layout.Layout.flight_off + (i * Layout.flight_record_size))
              ~len:Layout.flight_record_size)
      in
      t.flight_scan <- Some (records, torn);
      cur.Flight.seq <-
        (match List.rev records with (seq, _) :: _ -> seq + 1 | [] -> 0);
      Trace.end_span "tinca.recover.flight_scan";
      flight_note t Flight.Recovery_start ~a:(Ring.head t.ring) ~b:(Ring.tail t.ring)
        ~c:(List.length records)
  | Some cur ->
      (* Recorder present but replay disabled: still continue the
         sequence so later records never collide with survivors. *)
      let records, _ =
        Flight.scan ~slots:layout.Layout.flight_slots ~read:(fun i ->
            Pmem.read pmem
              ~off:(layout.Layout.flight_off + (i * Layout.flight_record_size))
              ~len:Layout.flight_record_size)
      in
      cur.Flight.seq <- (match List.rev records with (seq, _) :: _ -> seq + 1 | [] -> 0)
  | None -> ());
  (* Blocks named by the ring range are the in-flight transaction's; their
     entries must be interpreted as in-flight even when a role-switch
     flush leaked to the medium before the crash (see revoke_block). *)
  Trace.begin_span ~clock "tinca.recover.ring_scan";
  let in_ring = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace in_ring b ()) (Ring.pending_blknos t.ring);
  Trace.end_span "tinca.recover.ring_scan";
  (* Rebuild the DRAM index from the persistent entry table. *)
  Trace.begin_span ~clock "tinca.recover.entry_scan";
  for i = 0 to layout.Layout.nblocks - 1 do
    let e = entry_at t i in
    if e.Entry.valid then begin
      if Hashtbl.mem t.index e.Entry.disk_blkno then
        raise (Corrupt "Tinca.Cache.recover: duplicate valid entry for a disk block");
      let role_log = e.Entry.role = Entry.Log in
      let in_flight = role_log || Hashtbl.mem in_ring e.Entry.disk_blkno in
      let info =
        {
          disk_blkno = e.Entry.disk_blkno;
          entry_idx = i;
          cur = e.Entry.cur;
          (* prev is meaningful (and pins NVM space) only for in-flight
             blocks; other buffer-role entries carry a stale prev. *)
          prev = (if in_flight then e.Entry.prev else None);
          role_log;
          dirty = e.Entry.modified;
          pre_dirty = true;
          txn_pinned = false;
          node = None;
        }
      in
      info.node <- Some (Lru.push_mru t.lru info);
      Hashtbl.replace t.index info.disk_blkno info;
      Free_monitor.mark_used t.free_entries i;
      Free_monitor.mark_used t.free_data info.cur;
      (match info.prev with Some p -> Free_monitor.mark_used t.free_data p | None -> ());
      if role_log then t.pinned <- t.pinned + 1;
      if info.dirty then t.dirty_count <- t.dirty_count + 1;
      if info.prev <> None then t.cow_pinned <- t.cow_pinned + 1
    end
  done;
  Trace.end_span "tinca.recover.entry_scan";
  (* Revoke set = ring range [Tail, Head) ∪ all log-role entries.  The
     union is required: an entry can be persisted before its ring slot
     (commit step 1 precedes step 2), and a role-switched (buffer)
     entry of the in-flight transaction is only named by the ring. *)
  let before = Metrics.get t.metrics "tinca.revoked" in
  Trace.begin_span ~clock "tinca.recover.revoke";
  let revoke_logged blkno =
    let n0 = Metrics.get t.metrics "tinca.revoked" in
    revoke_block ~force:true t blkno;
    (* Each effective revocation is a recovery decision worth keeping:
       the record line rides the revocation's own entry fence. *)
    if Metrics.get t.metrics "tinca.revoked" > n0 then
      flight_note t Flight.Recovery_decision ~a:1 ~b:blkno
  in
  Hashtbl.iter (fun blkno () -> revoke_logged blkno) in_ring;
  Hashtbl.iter
    (fun blkno info -> if info.role_log then revoke_logged blkno)
    (Hashtbl.copy t.index);
  flight_flush_into_fence t;
  Ring.commit_point t.ring;
  Trace.end_span "tinca.recover.revoke";
  Trace.end_span "tinca.recover";
  Metrics.incr t.metrics "tinca.recoveries" ~by:1;
  Log.info (fun m ->
      m "recovered: %d cached blocks, %d in-flight blocks revoked (%d named by ring)"
        (Hashtbl.length t.index)
        (Metrics.get t.metrics "tinca.revoked" - before)
        (Hashtbl.length in_ring));
  t

let recover ?(flight_replay = true) ~pmem ~disk ~clock ~metrics () =
  recover_region ~flight_replay ~base:0 ~mem_bytes:(Pmem.size pmem) ~pmem ~disk ~clock ~metrics ()

let read_layout ~base ~mem_bytes pmem = read_super ~base ~mem_bytes pmem

(* --- block I/O ---------------------------------------------------------- *)

let charge_op t = Clock.advance t.clock t.cpu.Latency.op_overhead_ns
let charge_lookup t = Clock.advance t.clock t.cpu.Latency.hash_lookup_ns

let insert_clean t blkno data =
  let nvm_blk = alloc_data t in
  let entry_idx = alloc_entry t in
  Pmem.set_site t.pmem "cache.read_fill";
  let off = Layout.data_block_off t.layout nvm_blk in
  Pmem.write t.pmem ~off data;
  Pmem.persist t.pmem ~off ~len:t.cfg.block_size;
  let info =
    { disk_blkno = blkno; entry_idx; cur = nvm_blk; prev = None; role_log = false;
      dirty = false; pre_dirty = false; txn_pinned = false; node = None }
  in
  write_entry t entry_idx (entry_of_info ~role:Entry.Buffer info);
  info.node <- Some (Lru.push_mru t.lru info);
  Hashtbl.replace t.index blkno info;
  info

let read t blkno =
  charge_op t;
  charge_lookup t;
  match Hashtbl.find_opt t.index blkno with
  | Some info ->
      t.read_hits <- t.read_hits + 1;
      Metrics.incr t.metrics "tinca.read_hits" ~by:1;
      Lru.touch t.lru (node_exn info);
      read_data_block t info.cur
  | None ->
      t.read_misses <- t.read_misses + 1;
      Metrics.incr t.metrics "tinca.read_misses" ~by:1;
      let data = Disk.read_block t.disk blkno in
      let _info = insert_clean t blkno data in
      data

(* --- transactions (§4.3–§4.4) ------------------------------------------ *)

module Txn = struct
  type state = Running | Committing | Finished

  type handle = {
    cache : t;
    staged : (int, bytes) Hashtbl.t;
    mutable order : int list; (* reversed insertion order *)
    mutable state : state;
    (* Volatile seal bookkeeping ([seal]): the dirtied data+entry lines
       and staged ring-slot lines of this transaction, waiting for the
       group committer to flush them in one batch ([flush_sealed]). *)
    mutable sealed_lines : int list;
    mutable slot_lines : int list;
    mutable sealed_slots : int;
    (* Facade ticket id for the flight recorder's Txn_seal record; -1
       when the transaction has no ticket (sync path). *)
    mutable flight_ticket : int;
  }

  let init cache =
    Trace.instant ~clock:cache.clock "tinca.txn.init";
    { cache; staged = Hashtbl.create 16; order = []; state = Running;
      sealed_lines = []; slot_lines = []; sealed_slots = 0; flight_ticket = -1 }

  let set_flight_ticket h id = h.flight_ticket <- id

  let add h blkno data =
    if h.state <> Running then invalid_arg "Tinca.Txn.add: transaction not running";
    let t = h.cache in
    if Bytes.length data <> t.cfg.block_size then invalid_arg "Tinca.Txn.add: wrong block size";
    Clock.advance t.clock t.cpu.Latency.memcpy_4k_ns;
    if not (Hashtbl.mem h.staged blkno) then h.order <- blkno :: h.order;
    Hashtbl.replace h.staged blkno (Bytes.copy data)

  let block_count h = Hashtbl.length h.staged

  (* Commit one block: paper §4.4 steps 1–3 (write data COW; swing the
     entry atomically; record the block number in the ring and advance
     Head). *)
  let commit_block t blkno data =
    let new_blk = alloc_data t in
    Pmem.set_site t.pmem "commit.data";
    let off = Layout.data_block_off t.layout new_blk in
    Pmem.write t.pmem ~off data;
    Pmem.persist t.pmem ~off ~len:t.cfg.block_size;
    Pmem.set_site t.pmem "commit.entry";
    (match Hashtbl.find_opt t.index blkno with
    | Some info ->
        (* Write hit: COW block write (§4.3). *)
        t.write_hits <- t.write_hits + 1;
        Metrics.incr t.metrics "tinca.write_hits" ~by:1;
        info.pre_dirty <- info.dirty;
        info.prev <- Some info.cur;
        info.cur <- new_blk;
        info.role_log <- true;
        note_dirty t info true;
        t.pinned <- t.pinned + 1;
        t.cow_pinned <- t.cow_pinned + 1;
        if t.cow_pinned > t.peak_cow then t.peak_cow <- t.cow_pinned;
        write_entry t info.entry_idx (entry_of_info ~role:Entry.Log info)
    | None ->
        (* Write miss: fresh entry, previous version = FRESH. *)
        t.write_misses <- t.write_misses + 1;
        Metrics.incr t.metrics "tinca.write_misses" ~by:1;
        (* If the entry allocation fails, the COW data block allocated
           above must be returned to the pool before the exception
           escapes: the block never reached the index, so neither
           [revoke_partial] nor recovery can ever reclaim it, and
           [check_invariants] would flag the leak. *)
        let entry_idx =
          try alloc_entry t
          with e ->
            Free_monitor.free t.free_data new_blk;
            raise e
        in
        let info =
          { disk_blkno = blkno; entry_idx; cur = new_blk; prev = None; role_log = true;
            dirty = false; pre_dirty = false; txn_pinned = false; node = None }
        in
        note_dirty t info true;
        t.pinned <- t.pinned + 1;
        write_entry t entry_idx (entry_of_info ~role:Entry.Log info);
        info.node <- Some (Lru.push_mru t.lru info);
        Hashtbl.replace t.index blkno info);
    Ring.record t.ring blkno;
    Metrics.incr t.metrics "tinca.head_advance" ~by:1

  (* Group commit, stages A–B (§4.4 steps 1–3, fence-coalesced), built
     from two passes shared with the volatile [seal] path below.

     Stage A = pass 2's dirtied lines flushed once + one fence, however
     many blocks.  Stage B: stage all ring slots ([Ring.record_batch]:
     atomic slot writes, one flush pass, one fence) — Head still
     excludes them; the caller advances it with [Ring.publish] (one
     persist).  Entries and slots are durable strictly before Head
     covers them — the invariant recovery's union scan (ring range ∪
     log-role entries) relies on.  The split lets the sharded scheduler
     stage every shard's sub-commit before any Head moves. *)

  (* The hit/miss classification pass 1 records per block.  Pinning
     makes it stable for the rest of the commit — a pinned hit cannot be
     evicted and nothing inserts missing blocks mid-commit — so pass 2
     branches on the record instead of re-probing the index (which would
     need an unreachable-by-construction failure arm). *)
  type staged_alloc = Hit of info | Miss of int  (* fresh entry slot *)

  (* Pass 1 (volatile): pin every staged cached block, then allocate all
     COW data blocks and fresh entry slots up front, so replacement —
     including its persistent entry invalidations — runs to completion
     before the first staged store.  A failure here is rolled back
     completely (every allocation freed, every pin dropped) and
     re-raised with the cache exactly as before the call; nothing has
     been written, the ring is untouched. *)
  let alloc_group t blocks =
    List.iter
      (fun blkno ->
        match Hashtbl.find_opt t.index blkno with
        | Some info -> info.txn_pinned <- true
        | None -> ())
      blocks;
    (* (disk blkno, COW data block, classification), reversed *)
    let allocs = ref [] in
    Trace.begin_span ~clock:t.clock "tinca.commit.alloc";
    (try
       List.iter
         (fun blkno ->
           let new_blk = alloc_data t in
           match Hashtbl.find_opt t.index blkno with
           | Some info -> allocs := (blkno, new_blk, Hit info) :: !allocs
           | None ->
               let entry_idx =
                 try alloc_entry t
                 with e ->
                   Free_monitor.free t.free_data new_blk;
                   raise e
               in
               allocs := (blkno, new_blk, Miss entry_idx) :: !allocs)
         blocks
     with e ->
       List.iter
         (fun (_, data_blk, kind) ->
           Free_monitor.free t.free_data data_blk;
           match kind with
           | Miss i -> Free_monitor.free t.free_entries i
           | Hit _ -> ())
         !allocs;
       List.iter
         (fun blkno ->
           match Hashtbl.find_opt t.index blkno with
           | Some info -> info.txn_pinned <- false
           | None -> ())
         blocks;
       Trace.end_span "tinca.commit.alloc";
       raise e);
    Trace.end_span "tinca.commit.alloc";
    List.rev !allocs

  (* Pass 2 (cannot fail): write all COW data blocks (vectored), swing
     all entries with 16 B atomic writes, and return every dirtied line
     — the caller decides when (and with how many peer transactions)
     the lines are flushed.  The relative durability order of data vs.
     entry lines within the stage is irrelevant: until Head covers the
     blocks, recovery revokes whatever subset became durable. *)
  let store_group t staged allocs =
    Pmem.set_site t.pmem "commit.data";
    Pmem.writev t.pmem
      (List.map
         (fun (blkno, data_blk, _) ->
           (Layout.data_block_off t.layout data_blk, Hashtbl.find staged blkno))
         allocs);
    Pmem.set_site t.pmem "commit.entry";
    let lines = Hashtbl.create 64 in
    let note_range off len =
      for l = off / Pmem.line_size to (off + len - 1) / Pmem.line_size do
        Hashtbl.replace lines l ()
      done
    in
    List.iter
      (fun (blkno, new_blk, kind) ->
        note_range (Layout.data_block_off t.layout new_blk) t.cfg.block_size;
        match kind with
        | Hit info ->
            (* Write hit: COW block write (§4.3). *)
            t.write_hits <- t.write_hits + 1;
            Metrics.incr t.metrics "tinca.write_hits" ~by:1;
            info.pre_dirty <- info.dirty;
            info.prev <- Some info.cur;
            info.cur <- new_blk;
            info.role_log <- true;
            note_dirty t info true;
            t.pinned <- t.pinned + 1;
            t.cow_pinned <- t.cow_pinned + 1;
            if t.cow_pinned > t.peak_cow then t.peak_cow <- t.cow_pinned;
            let off = Layout.entry_off t.layout info.entry_idx in
            Pmem.atomic_write16 t.pmem ~off (Entry.encode (entry_of_info ~role:Entry.Log info));
            note_range off Entry.size
        | Miss entry_idx ->
            (* Write miss: fresh entry, previous version = FRESH. *)
            t.write_misses <- t.write_misses + 1;
            Metrics.incr t.metrics "tinca.write_misses" ~by:1;
            let info =
              { disk_blkno = blkno; entry_idx; cur = new_blk; prev = None; role_log = true;
                dirty = false; pre_dirty = false; txn_pinned = true; node = None }
            in
            note_dirty t info true;
            t.pinned <- t.pinned + 1;
            let off = Layout.entry_off t.layout entry_idx in
            Pmem.atomic_write16 t.pmem ~off (Entry.encode (entry_of_info ~role:Entry.Log info));
            note_range off Entry.size;
            info.node <- Some (Lru.push_mru t.lru info);
            Hashtbl.replace t.index blkno info)
      allocs;
    Hashtbl.fold (fun l () acc -> l :: acc) lines []
  [@@pmem.defer
    "group-commit stage A deliberately returns its dirtied lines unflushed: the caller folds \
     every batched transaction's data + entry lines into ONE flush_lines + sfence (the point of \
     the fence amortization), and until Head covers the blocks recovery revokes any subset that \
     became durable"]

  let stage_group t staged blocks =
    match blocks with
    | [] -> ()
    | blocks ->
        let allocs = alloc_group t blocks in
        Trace.begin_span ~clock:t.clock "tinca.commit.stage_a";
        let lines = store_group t staged allocs in
        (* Stage A fence: every dirtied data and entry line, flushed once.
           Pending flight-record lines ride the same flush burst. *)
        Pmem.set_site t.pmem "commit.flush";
        Pmem.flush_lines t.pmem (List.rev_append (flight_take t) lines);
        Pmem.sfence t.pmem;
        Trace.end_span "tinca.commit.stage_a";
        (* Stage B: slots durable (one fence); Head moves in the caller. *)
        Trace.begin_span ~clock:t.clock "tinca.commit.stage_b";
        Ring.record_batch t.ring blocks;
        Trace.end_span "tinca.commit.stage_b"

  let revoke_partial h blocks_done =
    let t = h.cache in
    List.iter (fun blkno -> revoke_block t blkno) blocks_done;
    Ring.rewind_head t.ring;
    t.committing <- false

  (* Admission control.  A rejected transaction is terminal (the handle
     moves to Finished) and leaves the cache untouched.

     Capacity accounting: the commit needs [n] fresh NVM data blocks
     (every staged block gets a COW copy) and one entry slot per write
     miss.  Supply is the free pools plus evictions, each of which frees
     exactly one data block and one entry slot — but the transaction's
     own cached blocks must not be counted as victims: every write hit
     pins its LRU node (and both its [cur] and [prev] NVM blocks) once
     its turn in the commit loop comes. *)
  let admit h blocks n =
    let t = h.cache in
    let reject () =
      h.state <- Finished;
      raise Transaction_too_large
    in
    if n > t.cfg.ring_slots then reject ();
    let hits = List.fold_left (fun acc b -> if Hashtbl.mem t.index b then acc + 1 else acc) 0 blocks in
    let misses = n - hits in
    let evictable = Lru.length t.lru - t.pinned - hits in
    if n > Free_monitor.free_count t.free_data + evictable then reject ();
    if misses > Free_monitor.free_count t.free_entries + evictable then reject ()

  (* §4.4 steps 1–2 (+ slot staging) in the pipeline's shape.  Batched:
     stages A–B under two fences, Head unmoved.  Per_block: the paper's
     literal protocol (~4 fences per block), whose Head advances as it
     goes — [publish_staged] is then a no-op.  On a capacity failure the
     partial work is fully revoked, the handle finished, and
     [Transaction_too_large] raised with the cache as before. *)
  let run_stage h blocks =
    let t = h.cache in
    match t.cfg.commit_pipeline with
    | Batched -> (
        try stage_group t h.staged blocks
        with Cache_exhausted ->
          t.committing <- false;
          h.state <- Finished;
          raise Transaction_too_large)
    | Per_block ->
        let committed = ref [] in
        (try
           List.iter
             (fun blkno ->
               commit_block t blkno (Hashtbl.find h.staged blkno);
               committed := blkno :: !committed)
             blocks
         with e ->
           revoke_partial h !committed;
           h.state <- Finished;
           (* The admission check is exact for the states normal
              operation produces, but if replacement still runs out of
              victims mid-commit, surface the one documented exception
              type — the partial commit has been fully rolled back. *)
           (match e with Cache_exhausted -> raise Transaction_too_large | e -> raise e))

  (* §4.4 step 3 for the batched pipeline: one Head persist covering
     every staged slot.  Per_block already published eagerly. *)
  let publish_staged h blocks =
    let t = h.cache in
    match t.cfg.commit_pipeline with
    | Batched ->
        Trace.begin_span ~clock:t.clock "tinca.commit.head";
        flight_note t Flight.Head_advance ~a:(List.length blocks) ~batch:t.flight_cur_batch;
        flight_flush_into_fence t;
        Ring.publish t.ring (List.length blocks);
        Metrics.incr t.metrics "tinca.head_advance" ~by:1;
        Trace.end_span "tinca.commit.head"
    | Per_block -> ()

  (* §4.4 steps 4–5 plus in-DRAM post-commit work, over a whole batch of
     transactions: batched role switch (one fence covering every
     transaction's blocks, strictly before Tail), Tail := Head (the
     durable commit point for them all), previous-version reclamation,
     LRU promotion, stats, and the write-through propagation when
     configured.  A single synchronous commit is the one-element case. *)
  let finish_commit_group pairs =
    match pairs with
    | [] -> ()
    | (h0, _, _) :: _ ->
        let t = h0.cache in
        (* §4.4 step 4: role switches for every block, batched under a
           single fence, which must complete BEFORE the Tail update so a
           crash cannot surface a half-switched committed transaction. *)
        let per_txn =
          List.map
            (fun (h, blocks, n) -> (h, List.map (fun blkno -> Hashtbl.find t.index blkno) blocks, n))
            pairs
        in
        let all_infos = List.concat_map (fun (_, infos, _) -> infos) per_txn in
        Pmem.set_site t.pmem "commit.role_switch";
        Trace.begin_span ~clock:t.clock "tinca.commit.role_switch";
        flight_note t Flight.Role_switch ~a:(List.length all_infos) ~batch:t.flight_cur_batch;
        flight_flush_into_fence t;
        write_entries_batched t
          (List.map
             (fun info ->
               info.role_log <- false;
               info.txn_pinned <- false;
               t.pinned <- t.pinned - 1;
               (info.entry_idx, entry_of_info ~role:Entry.Buffer info))
             all_infos);
        Trace.end_span "tinca.commit.role_switch";
        (* §4.4 step 5: Tail := Head — the durable commit point.  The
           batch's Tail_persist record — the durability evidence the
           crash dossier reconciles against — flushes under this very
           fence, so it is durable exactly when the batch is. *)
        Trace.begin_span ~clock:t.clock "tinca.commit.tail";
        flight_note t Flight.Tail_persist ~a:(List.length pairs) ~batch:t.flight_cur_batch;
        flight_flush_into_fence t;
        Ring.commit_point t.ring;
        Trace.end_span "tinca.commit.tail";
        (* Reclaim previous versions and promote to MRU (§4.6 rule 2b). *)
        List.iter
          (fun info ->
            (match info.prev with
            | Some p ->
                Free_monitor.free t.free_data p;
                info.prev <- None;
                t.cow_pinned <- t.cow_pinned - 1
            | None -> ());
            Lru.touch t.lru (node_exn info))
          all_infos;
        t.committing <- false;
        List.iter
          (fun (h, _, n) ->
            h.state <- Finished;
            Log.debug (fun m ->
                m "committed transaction of %d blocks (ring head %d)" n (Ring.head t.ring));
            Histogram.add t.txn_sizes (float_of_int n);
            Metrics.incr t.metrics "tinca.commits" ~by:1;
            Metrics.incr t.metrics "tinca.commit.blocks" ~by:n)
          per_txn;
        (* Write-through: propagate to disk immediately (kept for the
           ablation study; write-back is the paper's default).  The clean
           marks ride one batched entry update — one fence, not one per
           block. *)
        if t.cfg.mode = Write_through then begin
          Pmem.set_site t.pmem "cache.writeback";
          Trace.begin_span ~clock:t.clock "tinca.commit.writeback";
          write_entries_batched t
            (List.map
               (fun info ->
                 writeback t info;
                 note_dirty t info false;
                 (info.entry_idx, entry_of_info ~role:Entry.Buffer info))
               all_infos)
          ;
          Trace.end_span "tinca.commit.writeback"
        end

  let finish_commit h blocks n = finish_commit_group [ (h, blocks, n) ]

  let commit h =
    if h.state <> Running then invalid_arg "Tinca.Txn.commit: transaction not running";
    let t = h.cache in
    let blocks = List.rev h.order in
    let n = List.length blocks in
    if n = 0 then begin
      h.state <- Finished;
      Metrics.incr t.metrics "tinca.commits" ~by:1
    end
    else begin
      admit h blocks n;
      h.state <- Committing;
      t.committing <- true;
      charge_op t;
      Trace.begin_span ~clock:t.clock "tinca.commit";
      Trace.attr "blocks" (string_of_int n);
      (* A synchronous commit is a drain of a one-transaction batch; its
         drain record rides the stage-A flush burst. *)
      t.flight_cur_batch <- t.flight_batch;
      t.flight_batch <- t.flight_batch + 1;
      flight_note t Flight.Batch_drain ~cause:Flight.Sync ~a:1 ~batch:t.flight_cur_batch;
      (try
         run_stage h blocks;
         publish_staged h blocks
       with e ->
         Trace.end_span "tinca.commit";
         raise e);
      finish_commit h blocks n;
      Trace.end_span "tinca.commit";
      (* Background pre-cleaning runs outside the commit span: it is
         deferred maintenance the commit merely triggers. *)
      maybe_clean t
    end

  (* --- split commit for the sharded scheduler (see Shard) --------------
     [stage] runs admission control plus §4.4 steps 1–2 and slot staging;
     [publish] advances this cache's Head over the staged slots; [finalize]
     performs the role switch, Tail advance and post-commit bookkeeping.
     [commit] ≡ [stage]; [publish]; [finalize] with identical operation,
     fence and latency sequence (modulo trace spans).  Between [stage] and
     [finalize] the sub-commit can be abandoned with [abort], which revokes
     staged blocks whether or not Head has moved. *)

  let stage h =
    if h.state <> Running then invalid_arg "Tinca.Txn.stage: transaction not running";
    let t = h.cache in
    let blocks = List.rev h.order in
    let n = List.length blocks in
    if n = 0 then invalid_arg "Tinca.Txn.stage: empty transaction";
    admit h blocks n;
    h.state <- Committing;
    t.committing <- true;
    charge_op t;
    run_stage h blocks

  let publish h =
    if h.state <> Committing then invalid_arg "Tinca.Txn.publish: transaction not staged";
    publish_staged h (List.rev h.order)

  let finalize h =
    if h.state <> Committing then invalid_arg "Tinca.Txn.finalize: transaction not staged";
    let blocks = List.rev h.order in
    finish_commit h blocks (List.length blocks);
    maybe_clean h.cache

  (* --- group commit across transactions (async commit, ISSUE 8) --------
     [seal] volatilely applies a whole transaction — admission, pass-1
     allocation, COW data + entry stores, ring-slot staging — without a
     single flush or fence: the DRAM index already serves reads from the
     new versions, but nothing is durable and Head excludes the staged
     slots, so a crash at any point rolls the transaction back (surviving
     log-role entry lines are revoked by recovery's entry scan; staged
     slots are invisible to the ring range).  [flush_sealed] then makes a
     whole batch of sealed transactions durable with ONE stage-A
     flush+fence, ONE slot flush+fence and ONE Head persist covering all
     their slots, and [finalize_sealed] retires them with one batched
     role switch and one Tail persist — the per-commit fence bill drops
     from ~5 to ~5/K at batch size K. *)

  let seal_group t h blocks =
    let allocs = alloc_group t blocks in
    let lines = store_group t h.staged allocs in
    let slot_lines = Ring.stage_batch t.ring blocks in
    h.sealed_lines <- lines;
    h.slot_lines <- slot_lines;
    h.sealed_slots <- List.length blocks

  let seal h =
    if h.state <> Running then invalid_arg "Tinca.Txn.seal: transaction not running";
    let t = h.cache in
    if t.cfg.commit_pipeline <> Batched then
      invalid_arg "Tinca.Txn.seal: group commit requires the Batched pipeline";
    let blocks = List.rev h.order in
    let n = List.length blocks in
    if n = 0 then invalid_arg "Tinca.Txn.seal: empty transaction";
    admit h blocks n;
    h.state <- Committing;
    t.committing <- true;
    charge_op t;
    Trace.begin_span ~clock:t.clock "tinca.commit.seal";
    (try seal_group t h blocks
     with Cache_exhausted ->
       Trace.end_span "tinca.commit.seal";
       (* Pass-1 rollback left the cache untouched; earlier sealed
          transactions (staged ring slots) keep the commit window open. *)
       if Ring.staged t.ring = 0 then t.committing <- false;
       h.state <- Finished;
       raise Transaction_too_large);
    (* Seal record: volatile like the seal itself — it becomes durable
       with the batch's stage-A flush, naming the ticket, the footprint
       and the first block's payload checksum for the dossier's
       acked-vs-survived probe. *)
    (match blocks with
    | first :: _ ->
        flight_note t Flight.Txn_seal ~a:(h.flight_ticket + 1) ~b:n ~c:first
          ~d:
            (Int32.to_int
               (Tinca_util.Codec.crc32 (Hashtbl.find h.staged first) ~pos:0
                  ~len:(Bytes.length (Hashtbl.find h.staged first)))
            land 0xFFFF_FFFF)
          ~batch:t.flight_batch
    | [] -> ());
    Trace.end_span "tinca.commit.seal"

  (* Drop a sealed-but-unflushed transaction: revoke its blocks (all in
     log role, with exact pre-images in DRAM) and un-stage its ring
     slots.  Only valid while the transaction's slots are the newest
     staged ones on this cache — the sharded scheduler unwinds a
     partially sealed multi-shard transaction immediately, before any
     later seal. *)
  let unseal h =
    if h.state <> Committing then invalid_arg "Tinca.Txn.unseal: transaction not sealed";
    let t = h.cache in
    List.iter (fun blkno -> revoke_block t blkno) (List.rev h.order);
    Ring.unstage t.ring h.sealed_slots;
    h.sealed_lines <- [];
    h.slot_lines <- [];
    h.sealed_slots <- 0;
    if Ring.staged t.ring = 0 && Ring.in_flight t.ring = 0 then t.committing <- false;
    h.state <- Finished;
    Metrics.incr t.metrics "tinca.aborts" ~by:1

  (* Stages A–B + Head advance for a whole batch of sealed transactions
     on one cache.  All-or-nothing under crash: until the single Head
     persist lands, every transaction of the batch rolls back; after it,
     the batch is named by the ring range in its entirety (and committed
     by the Tail persist of [finalize_sealed], or revoked as one unit by
     recovery if the crash lands in between). *)
  let flush_sealed ?(cause = Flight.Barrier) handles =
    match handles with
    | [] -> ()
    | h0 :: _ ->
        let t = h0.cache in
        List.iter
          (fun h ->
            if h.state <> Committing then
              invalid_arg "Tinca.Txn.flush_sealed: transaction not sealed";
            if h.cache != t then invalid_arg "Tinca.Txn.flush_sealed: mixed caches")
          handles;
        (* Drain record: this cache's next batch id, the drain cause and
           the batch population, flushed under the stage-A fence together
           with any pending seal records. *)
        t.flight_cur_batch <- t.flight_batch;
        t.flight_batch <- t.flight_batch + 1;
        flight_note t Flight.Batch_drain ~cause ~a:(List.length handles)
          ~batch:t.flight_cur_batch;
        Trace.begin_span ~clock:t.clock "tinca.commit.stage_a";
        Pmem.set_site t.pmem "commit.flush";
        Pmem.flush_lines t.pmem
          (List.rev_append (flight_take t) (List.concat_map (fun h -> h.sealed_lines) handles));
        Pmem.sfence t.pmem;
        Trace.end_span "tinca.commit.stage_a";
        Trace.begin_span ~clock:t.clock "tinca.commit.stage_b";
        Pmem.set_site t.pmem "ring.record";
        Pmem.flush_lines t.pmem (List.concat_map (fun h -> h.slot_lines) handles);
        Pmem.sfence t.pmem;
        Trace.end_span "tinca.commit.stage_b";
        Trace.begin_span ~clock:t.clock "tinca.commit.head";
        flight_note t Flight.Head_advance
          ~a:(List.fold_left (fun acc h -> acc + h.sealed_slots) 0 handles)
          ~batch:t.flight_cur_batch;
        flight_flush_into_fence t;
        Ring.publish t.ring (List.fold_left (fun acc h -> acc + h.sealed_slots) 0 handles);
        Metrics.incr t.metrics "tinca.head_advance" ~by:1;
        Trace.end_span "tinca.commit.head"

  (* Steps 4–5 for the whole batch: one batched role switch, one Tail
     persist, then per-transaction post-commit bookkeeping. *)
  let finalize_sealed handles =
    match handles with
    | [] -> ()
    | h0 :: _ ->
        finish_commit_group
          (List.map
             (fun h ->
               let blocks = List.rev h.order in
               (h, blocks, List.length blocks))
             handles);
        List.iter
          (fun h ->
            h.sealed_lines <- [];
            h.slot_lines <- [];
            h.sealed_slots <- 0)
          handles;
        maybe_clean h0.cache

  (* Failure injection for tests and the crash-space checker: run the
     commit protocol for the first [k] staged blocks and stop, as an
     injected mid-commit failure would.  [abort] then exercises the
     production revocation path. *)
  let commit_prefix h k =
    if h.state <> Running then invalid_arg "Tinca.Txn.commit_prefix: transaction not running";
    let t = h.cache in
    let blocks = List.rev h.order in
    if k < 0 || k > List.length blocks then invalid_arg "Tinca.Txn.commit_prefix: bad prefix";
    h.state <- Committing;
    t.committing <- true;
    let prefix = List.filteri (fun i _ -> i < k) blocks in
    match t.cfg.commit_pipeline with
    | Batched ->
        stage_group t h.staged prefix;
        if prefix <> [] then begin
          Ring.publish t.ring (List.length prefix);
          Metrics.incr t.metrics "tinca.head_advance" ~by:1
        end
    | Per_block ->
        List.iter (fun blkno -> commit_block t blkno (Hashtbl.find h.staged blkno)) prefix

  let abort h =
    let t = h.cache in
    match h.state with
    | Finished -> invalid_arg "Tinca.Txn.abort: transaction already finished"
    | Running ->
        h.state <- Finished;
        Metrics.incr t.metrics "tinca.aborts" ~by:1
    | Committing ->
        (* Mid-commit abort: revoke what the ring has recorded, plus any
           staged-but-unpublished blocks (a [stage]d sub-commit whose Head
           has not moved — its slots are invisible to [pending_blknos]).
           [revoke_block] is role-guarded, so blocks already revoked via
           the ring pass (or never staged) are untouched. *)
        let pending = Ring.pending_blknos t.ring in
        List.iter (fun blkno -> revoke_block t blkno) pending;
        List.iter (fun blkno -> revoke_block t blkno) (List.rev h.order);
        Ring.rewind_head t.ring;
        t.committing <- false;
        h.state <- Finished;
        Metrics.incr t.metrics "tinca.aborts" ~by:1
end

let write_direct t blkno data =
  let h = Txn.init t in
  Txn.add h blkno data;
  Txn.commit h

(* --- maintenance -------------------------------------------------------- *)

let flush_all t =
  Pmem.set_site t.pmem "cache.writeback";
  (* All clean marks under one batched entry update (one fence), instead
     of a flush + fence per dirty block. *)
  let updates =
    Hashtbl.fold
      (fun _ info acc ->
        if info.dirty && not info.role_log then begin
          writeback t info;
          note_dirty t info false;
          (info.entry_idx, entry_of_info ~role:Entry.Buffer info) :: acc
        end
        else acc)
      t.index []
  in
  write_entries_batched t updates

let cached_blocks t = Hashtbl.length t.index
let free_blocks t = Free_monitor.free_count t.free_data
let contains t blkno = Hashtbl.mem t.index blkno

let ratio a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b)
let write_hit_rate t = ratio t.write_hits t.write_misses
let read_hit_rate t = ratio t.read_hits t.read_misses
let txn_size_histogram t = t.txn_sizes
let peak_cow_blocks t = t.peak_cow

let peek t blkno =
  match Hashtbl.find_opt t.index blkno with
  | Some info -> Some (read_data_block t info.cur)
  | None -> None

(* --- /proc-style stats snapshot ---------------------------------------- *)

type stats = {
  capacity_blocks : int;
  cached : int;
  free_data : int;
  free_entries : int;
  dirty : int;
  dirty_ratio : float;
  pinned : int;
  cow_pinned : int;
  peak_cow : int;
  read_hits : int;
  read_misses : int;
  read_hit_ratio : float;
  write_hits : int;
  write_misses : int;
  write_hit_ratio : float;
  commits : int;
  aborts : int;
  revoked : int;
  recoveries : int;
  ring_slots : int;
  ring_in_flight : int;
  ring_high_water : int;
  wear_max : int;
  wear_mean : float;
}

let stats t =
  let nblocks = t.layout.Layout.nblocks in
  let nlines = Pmem.size t.pmem / Pmem.line_size in
  {
    capacity_blocks = nblocks;
    cached = Hashtbl.length t.index;
    free_data = Free_monitor.free_count t.free_data;
    free_entries = Free_monitor.free_count t.free_entries;
    dirty = t.dirty_count;
    dirty_ratio =
      (if nblocks = 0 then 0.0 else float_of_int t.dirty_count /. float_of_int nblocks);
    pinned = t.pinned;
    cow_pinned = t.cow_pinned;
    peak_cow = t.peak_cow;
    read_hits = t.read_hits;
    read_misses = t.read_misses;
    read_hit_ratio = ratio t.read_hits t.read_misses;
    write_hits = t.write_hits;
    write_misses = t.write_misses;
    write_hit_ratio = ratio t.write_hits t.write_misses;
    commits = Metrics.get t.metrics "tinca.commits";
    aborts = Metrics.get t.metrics "tinca.aborts";
    revoked = Metrics.get t.metrics "tinca.revoked";
    recoveries = Metrics.get t.metrics "tinca.recoveries";
    ring_slots = Ring.slots t.ring;
    ring_in_flight = Ring.in_flight t.ring;
    ring_high_water = Ring.high_water t.ring;
    wear_max = Pmem.wear_max t.pmem;
    wear_mean =
      (if nlines = 0 then 0.0
       else float_of_int (Pmem.wear_total t.pmem) /. float_of_int nlines);
  }

let stats_kv s =
  let i = string_of_int and f = Printf.sprintf "%.3f" in
  [
    ("capacity_blocks", i s.capacity_blocks);
    ("cached_blocks", i s.cached);
    ("free_data_blocks", i s.free_data);
    ("free_entry_slots", i s.free_entries);
    ("dirty_blocks", i s.dirty);
    ("dirty_ratio", f s.dirty_ratio);
    ("pinned_entries", i s.pinned);
    ("cow_pinned_blocks", i s.cow_pinned);
    ("peak_cow_blocks", i s.peak_cow);
    ("read_hits", i s.read_hits);
    ("read_misses", i s.read_misses);
    ("read_hit_ratio", f s.read_hit_ratio);
    ("write_hits", i s.write_hits);
    ("write_misses", i s.write_misses);
    ("write_hit_ratio", f s.write_hit_ratio);
    ("commits", i s.commits);
    ("aborts", i s.aborts);
    ("revoked_blocks", i s.revoked);
    ("recoveries", i s.recoveries);
    ("ring_slots", i s.ring_slots);
    ("ring_in_flight", i s.ring_in_flight);
    ("ring_high_water", i s.ring_high_water);
    ("nvm_wear_max", i s.wear_max);
    ("nvm_wear_mean", f s.wear_mean);
  ]

(* Region-attributed wear: (region, total write-backs, max per line),
   regions in layout order.  Pointer lines are reported separately from
   the superblock — they are the hot lines wear-leveling cares about. *)
let region_wear t =
  let l = t.layout in
  let span name off len =
    if len <= 0 then (name, 0, 0)
    else (name, Pmem.wear_sum_in t.pmem ~off ~len, Pmem.wear_max_in t.pmem ~off ~len)
  in
  [
    span "super" l.Layout.super_off (l.Layout.head_off - l.Layout.super_off);
    span "head" l.Layout.head_off (l.Layout.tail_off - l.Layout.head_off);
    span "tail" l.Layout.tail_off (l.Layout.ring_off - l.Layout.tail_off);
    span "ring" l.Layout.ring_off (l.Layout.flight_off - l.Layout.ring_off);
    span "flight" l.Layout.flight_off (l.Layout.entries_off - l.Layout.flight_off);
    span "entries" l.Layout.entries_off (l.Layout.data_off - l.Layout.entries_off);
    span "data" l.Layout.data_off (l.Layout.total_bytes - l.Layout.data_off);
  ]

(* --- invariant audit ----------------------------------------------------- *)

let check_invariants t =
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Invariant_violation m)) ("Tinca.Cache invariant: " ^^ fmt)
  in
  if Lru.length t.lru <> Hashtbl.length t.index then
    fail "LRU length %d <> index size %d" (Lru.length t.lru) (Hashtbl.length t.index);
  if (not t.committing) && Ring.head t.ring <> Ring.tail t.ring then
    fail "ring not quiescent outside commit (head=%d tail=%d)" (Ring.head t.ring)
      (Ring.tail t.ring);
  let data_refs = Hashtbl.create 64 in
  let claim blk who =
    if blk < 0 || blk >= t.layout.Layout.nblocks then fail "NVM block %d out of range" blk;
    (match Hashtbl.find_opt data_refs blk with
    | Some other -> fail "NVM block %d referenced by both %s and %s" blk other who
    | None -> ());
    Hashtbl.replace data_refs blk who;
    if Free_monitor.is_free t.free_data blk then fail "NVM block %d both free and referenced" blk
  in
  let pinned = ref 0 in
  Hashtbl.iter
    (fun blkno info ->
      if info.disk_blkno <> blkno then fail "index key %d <> info disk_blkno %d" blkno info.disk_blkno;
      claim info.cur (Printf.sprintf "cur of %d" blkno);
      (match info.prev with
      | Some p ->
          if not info.role_log then fail "block %d has prev but buffer role" blkno;
          claim p (Printf.sprintf "prev of %d" blkno)
      | None -> ());
      if info.role_log then incr pinned;
      if Free_monitor.is_free t.free_entries info.entry_idx then
        fail "entry slot %d of block %d marked free" info.entry_idx blkno;
      let e = entry_at t info.entry_idx in
      (* Buffer-role media entries legitimately keep a stale prev field
         after the role switch (it is only dead weight until the next COW
         update overwrites it), so normalize prev before comparing. *)
      let e = if e.Entry.role = Entry.Buffer then { e with Entry.prev = info.prev } else e in
      if not (Entry.equal e (entry_of_info ~role:(if info.role_log then Entry.Log else Entry.Buffer) info))
      then
        fail "media entry %s disagrees with DRAM info for block %d"
          (Format.asprintf "%a" Entry.pp e)
          blkno)
    t.index;
  if !pinned <> t.pinned then fail "pinned count %d <> recomputed %d" t.pinned !pinned;
  let used_data = t.layout.Layout.nblocks - Free_monitor.free_count t.free_data in
  if used_data <> Hashtbl.length data_refs then
    fail "free monitor says %d used data blocks, references say %d" used_data
      (Hashtbl.length data_refs)
