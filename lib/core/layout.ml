type t = {
  block_size : int;
  ring_slots : int;
  nblocks : int;
  super_off : int;
  head_off : int;
  tail_off : int;
  ring_off : int;
  flight_off : int;
  flight_slots : int;
  entries_off : int;
  data_off : int;
  total_bytes : int;
}

let align_up v a = (v + a - 1) / a * a

(* The superblock lives at a fixed bootstrap offset so it can be found
   (and validated) before any layout is known.  A sharded device stores a
   shard directory here instead and gives each shard its own superblock
   at the shard's [base]. *)
let superblock_off = 0

(* Flight-recorder records are exactly one cache line so a record write
   dirties one line and its survival at a crash is decided by one torn
   bit in the crash model. *)
let flight_record_size = 64

let compute_flight ~flight_slots ~base ~pmem_bytes ~block_size ~ring_slots =
  if block_size <= 0 || block_size mod 64 <> 0 then
    invalid_arg "Layout.compute: block_size must be a positive multiple of 64";
  if ring_slots <= 0 then invalid_arg "Layout.compute: ring_slots must be positive";
  if flight_slots < 0 then invalid_arg "Layout.compute: flight_slots must be non-negative";
  if base < 0 || base mod 64 <> 0 then
    invalid_arg "Layout.compute: base must be a non-negative multiple of 64";
  let super_off = base in
  let head_off = base + 64 in
  let tail_off = base + 128 in
  let ring_off = base + 192 in
  (* The flight ring sits between the commit ring and the entry table:
     64 B-aligned by construction, zero bytes when the recorder is off,
     so a recorder-less layout is byte-for-byte the historical one. *)
  let flight_off = align_up (ring_off + (ring_slots * 8)) 64 in
  let entries_off = flight_off + (flight_slots * flight_record_size) in
  (* Each data block costs block_size bytes of data plus 16 bytes of entry.
     [pmem_bytes] is the absolute end of this layout's region, so a
     sharded device can pack one layout per shard at successive bases. *)
  let budget = pmem_bytes - entries_off in
  if budget < block_size + Entry.size then
    invalid_arg "Layout.compute: pmem too small for this ring";
  let rec fit nblocks =
    let data_off = align_up (entries_off + (nblocks * Entry.size)) block_size in
    if data_off + (nblocks * block_size) <= pmem_bytes then (nblocks, data_off)
    else fit (nblocks - 1)
  in
  let nblocks, data_off = fit (budget / (block_size + Entry.size)) in
  if nblocks <= 0 then invalid_arg "Layout.compute: pmem too small";
  {
    block_size;
    ring_slots;
    nblocks;
    super_off;
    head_off;
    tail_off;
    ring_off;
    flight_off;
    flight_slots;
    entries_off;
    data_off;
    total_bytes = data_off + (nblocks * block_size);
  }

let compute_at ~base ~pmem_bytes ~block_size ~ring_slots =
  compute_flight ~flight_slots:0 ~base ~pmem_bytes ~block_size ~ring_slots

let compute ~pmem_bytes ~block_size ~ring_slots =
  compute_flight ~flight_slots:0 ~base:0 ~pmem_bytes ~block_size ~ring_slots

(* Explicit bounds checks, not [assert]: these guard every entry/data
   address computation and must survive [-noassert] release builds. *)
let entry_off t i =
  if i < 0 || i >= t.nblocks then
    invalid_arg (Printf.sprintf "Layout.entry_off: index %d not in [0, %d)" i t.nblocks);
  t.entries_off + (i * Entry.size)

let data_block_off t i =
  if i < 0 || i >= t.nblocks then
    invalid_arg (Printf.sprintf "Layout.data_block_off: index %d not in [0, %d)" i t.nblocks);
  t.data_off + (i * t.block_size)

let ring_slot_off t counter = t.ring_off + (counter mod t.ring_slots * 8)

(* Flight-recorder slot [seq mod flight_slots]: one full cache line per
   record (overwrite-oldest). *)
let flight_slot_off t seq =
  if t.flight_slots = 0 then invalid_arg "Layout.flight_slot_off: recorder region is empty";
  t.flight_off + (seq mod t.flight_slots * flight_record_size)

let metadata_fraction t = float_of_int t.data_off /. float_of_int t.total_bytes
