(** A plain block-device interface, used to stack layers (journal over
    cache over NVM/disk) without introducing dependency cycles: each
    layer constructs one of these records over itself, and consumers
    (the JBD2 journal, the stacks) program against the record instead of
    the concrete layer type. *)

type t = {
  block_size : int;  (** bytes per block; fixed for the device *)
  nblocks : int;  (** device capacity in blocks *)
  read_block : int -> bytes;  (** newest content of a block *)
  write_block : int -> bytes -> unit;
      (** overwrite a block; durability semantics are the underlying
          layer's (a raw disk write is durable, a cache write is
          whatever the cache promises) *)
}

(** View a simulated disk as a block device. *)
val of_disk : Disk.t -> t

(** View an NVM block device (persist-per-write) as a block device. *)
val of_nvm_bdev : Nvm_bdev.t -> t
