open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Codec = Tinca_util.Codec

type config = {
  block_size : int;
  associativity : int;
  metadata_sync : bool;
  flush_writes : bool;
  dirty_threshold : float;
}

let default_config =
  { block_size = 4096; associativity = 512; metadata_sync = true; flush_writes = true;
    dirty_threshold = 0.2 }

let slot_bytes = 16
let flag_valid = 1
let flag_dirty = 2

type t = {
  cfg : config;
  pmem : Pmem.t;
  disk : Disk.t;
  clock : Clock.t;
  metrics : Metrics.t;
  cpu : Latency.cpu;
  nslots : int;
  nsets : int;
  md_off : int; (* metadata region offset in pmem *)
  data_off : int;
  md_shadow : Bytes.t; (* DRAM mirror of the whole metadata region *)
  (* DRAM mirror per slot *)
  blkno : int array;
  valid : bool array;
  dirty : bool array;
  stamp : int array;
  set_index : (int, int) Hashtbl.t array; (* per set: disk blkno -> slot *)
  dirty_in_set : int array;
  mutable tick : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
}

(* Geometry: [nslots/256] 4 KB metadata blocks followed by nslots 4 KB
   data blocks, both inside the pmem. *)
let geometry ~pmem_bytes ~block_size =
  let slots_per_md = block_size / slot_bytes in
  let rec fit nslots =
    if nslots <= 0 then invalid_arg "Flashcache: pmem too small";
    let md_blocks = (nslots + slots_per_md - 1) / slots_per_md in
    let total = (md_blocks + nslots) * block_size in
    if total <= pmem_bytes then (nslots, md_blocks) else fit (nslots - 1)
  in
  fit (pmem_bytes / (block_size + slot_bytes))

let mk ~config:cfg ~pmem ~disk ~clock ~metrics =
  if Disk.block_size disk <> cfg.block_size then
    invalid_arg "Flashcache: disk block size mismatch";
  let nslots, md_blocks = geometry ~pmem_bytes:(Pmem.size pmem) ~block_size:cfg.block_size in
  let nsets = max 1 (nslots / cfg.associativity) in
  {
    cfg;
    pmem;
    disk;
    clock;
    metrics;
    cpu = Latency.default_cpu;
    nslots;
    nsets;
    md_off = 0;
    data_off = md_blocks * cfg.block_size;
    md_shadow = Bytes.make (md_blocks * cfg.block_size) '\000';
    blkno = Array.make nslots 0;
    valid = Array.make nslots false;
    dirty = Array.make nslots false;
    stamp = Array.make nslots 0;
    set_index = Array.init nsets (fun _ -> Hashtbl.create 64);
    dirty_in_set = Array.make nsets 0;
    tick = 0;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
  }

let create ~config ~pmem ~disk ~clock ~metrics =
  let t = mk ~config ~pmem ~disk ~clock ~metrics in
  (* Zero (invalidate) the persistent metadata region. *)
  Pmem.set_site pmem "fc.format";
  Pmem.fill pmem ~off:t.md_off ~len:(Bytes.length t.md_shadow) '\000';
  if config.flush_writes then Pmem.persist pmem ~off:t.md_off ~len:(Bytes.length t.md_shadow);
  t
[@@pmem.defer
  "flush_writes=false deliberately models the paper's crash-unsafe no-flush baseline (§3.2); \
   with flush_writes=true every path persists"]

let nslots t = t.nslots

let set_of_blkno t blkno = blkno * 2654435761 land max_int mod t.nsets
let slot_data_off t slot = t.data_off + (slot * t.cfg.block_size)

(* Keep the per-set dirty population in sync with the dirty bit. *)
let mark_dirty t slot v =
  if t.dirty.(slot) <> v then begin
    t.dirty.(slot) <- v;
    let set = slot / t.cfg.associativity in
    t.dirty_in_set.(set) <- t.dirty_in_set.(set) + (if v then 1 else -1)
  end


(* Update the 16 B slot record (u56 disk blkno in bytes 0..6, flags in
   byte 7) in the DRAM shadow, then (when [metadata_sync]) rewrite the
   whole containing 4 KB metadata block to NVM — Flashcache's
   block-format synchronous metadata update. *)
let update_slot_metadata t slot =
  let off = slot * slot_bytes in
  Codec.set_u56 t.md_shadow off t.blkno.(slot);
  let flags =
    (if t.valid.(slot) then flag_valid else 0) lor if t.dirty.(slot) then flag_dirty else 0
  in
  Codec.set_u8 t.md_shadow (off + 7) flags;
  if t.cfg.metadata_sync then begin
    Pmem.set_site t.pmem "fc.metadata";
    Tinca_obs.Trace.begin_span ~clock:t.clock "fc.md_sync";
    let md_block = off / t.cfg.block_size in
    let md_block_off = t.md_off + (md_block * t.cfg.block_size) in
    Pmem.write_sub t.pmem ~off:md_block_off t.md_shadow ~pos:(md_block * t.cfg.block_size)
      ~len:t.cfg.block_size;
    if t.cfg.flush_writes then Pmem.persist t.pmem ~off:md_block_off ~len:t.cfg.block_size;
    Metrics.incr t.metrics "flashcache.md_writes" ~by:1;
    Tinca_obs.Trace.end_span "fc.md_sync"
  end
[@@pmem.defer
  "flush_writes=false deliberately models the paper's crash-unsafe no-flush baseline (§3.2); \
   with flush_writes=true every metadata rewrite persists"]

let recover ~config ~pmem ~disk ~clock ~metrics =
  let t = mk ~config ~pmem ~disk ~clock ~metrics in
  Pmem.read_into pmem ~off:t.md_off ~buf:t.md_shadow ~pos:0 ~len:(Bytes.length t.md_shadow);
  for slot = 0 to t.nslots - 1 do
    let off = slot * slot_bytes in
    let flags = Codec.get_u8 t.md_shadow (off + 7) in
    if flags land flag_valid <> 0 then begin
      t.valid.(slot) <- true;
      mark_dirty t slot (flags land flag_dirty <> 0);
      t.blkno.(slot) <- Codec.get_u56 t.md_shadow off;
      Hashtbl.replace t.set_index.(set_of_blkno t t.blkno.(slot)) t.blkno.(slot) slot
    end
  done;
  t

let charge_op t =
  Clock.advance t.clock (t.cpu.Latency.op_overhead_ns +. t.cpu.Latency.hash_lookup_ns)

let touch t slot =
  t.tick <- t.tick + 1;
  t.stamp.(slot) <- t.tick

let lookup t blkno = Hashtbl.find_opt t.set_index.(set_of_blkno t blkno) blkno

let writeback ?(background = false) t slot =
  let data = Pmem.read t.pmem ~off:(slot_data_off t slot) ~len:t.cfg.block_size in
  Disk.write_block ~background t.disk t.blkno.(slot) data;
  Metrics.incr t.metrics "flashcache.writebacks" ~by:1

(* Flashcache's dirty-threshold cleaner: when a set's dirty fraction
   exceeds [dirty_threshold], write its least-recently-used dirty blocks
   back (using background device time), then persist the affected
   metadata blocks once each.  Small hysteresis: only the oldest few
   dirty blocks are cleaned, so hot (recently re-dirtied) blocks keep
   coalescing writes in the cache like real Flashcache's LRU-order
   cleaner. *)
let clean_set t set =
  let assoc = t.cfg.associativity in
  let high = int_of_float (t.cfg.dirty_threshold *. float_of_int assoc) in
  if t.dirty_in_set.(set) > high then begin
    let low = max 0 (high * 7 / 8) in
    let base = set * assoc in
    let limit = min t.nslots (base + assoc) in
    (* Collect dirty slots, oldest first. *)
    let slots = ref [] in
    for s = base to limit - 1 do
      if t.valid.(s) && t.dirty.(s) then slots := s :: !slots
    done;
    let by_age = List.sort (fun a b -> compare t.stamp.(a) t.stamp.(b)) !slots in
    (* Pick the oldest dirty blocks, then issue their disk writes in disk
       block order (the elevator pass real cleaners rely on, which keeps
       HDD cleaning largely sequential). *)
    let picked = ref [] in
    let rec pick budget = function
      | [] -> ()
      | s :: rest ->
          if budget > 0 then begin
            picked := s :: !picked;
            pick (budget - 1) rest
          end
    in
    pick (t.dirty_in_set.(set) - low) by_age;
    let in_dbn_order = List.sort (fun a b -> compare t.blkno.(a) t.blkno.(b)) !picked in
    let touched_md = Hashtbl.create 8 in
    List.iter
      (fun s ->
        writeback ~background:true t s;
        mark_dirty t s false;
        Metrics.incr t.metrics "flashcache.cleaned" ~by:1;
        (* refresh the shadow record; metadata blocks are persisted once
           per cleaning round below *)
        let off = s * slot_bytes in
        Codec.set_u56 t.md_shadow off t.blkno.(s);
        Codec.set_u8 t.md_shadow (off + 7) flag_valid;
        Hashtbl.replace touched_md (off / t.cfg.block_size) ())
      in_dbn_order;
    if t.cfg.metadata_sync then begin
      Pmem.set_site t.pmem "fc.clean_md";
      Tinca_obs.Trace.begin_span ~clock:t.clock "fc.clean_md";
      Hashtbl.iter
        (fun md_block () ->
          let md_block_off = t.md_off + (md_block * t.cfg.block_size) in
          Pmem.write_sub t.pmem ~off:md_block_off t.md_shadow
            ~pos:(md_block * t.cfg.block_size) ~len:t.cfg.block_size;
          if t.cfg.flush_writes then
            Pmem.persist t.pmem ~off:md_block_off ~len:t.cfg.block_size;
          Metrics.incr t.metrics "flashcache.md_writes" ~by:1)
        touched_md;
      Tinca_obs.Trace.end_span "fc.clean_md"
    end
  end
[@@pmem.defer
  "flush_writes=false deliberately models the paper's crash-unsafe no-flush baseline (§3.2); \
   with flush_writes=true each touched metadata block persists once per cleaning round"]

(* Pick a victim in [set]: an invalid slot if any, else the set's LRU. *)
let victim_in_set t set =
  let base = set * t.cfg.associativity in
  let limit = min t.nslots (base + t.cfg.associativity) in
  let best = ref base in
  let found_invalid = ref false in
  (try
     for s = base to limit - 1 do
       if not t.valid.(s) then begin
         best := s;
         found_invalid := true;
         raise Exit
       end
     done
   with Exit -> ());
  if not !found_invalid then
    for s = base + 1 to limit - 1 do
      if t.stamp.(s) < t.stamp.(!best) then best := s
    done;
  !best

(* Install [blkno] in a slot of its set, evicting if necessary; the
   caller fills the data block. *)
let allocate_slot t new_blkno =
  let set = set_of_blkno t new_blkno in
  let slot = victim_in_set t set in
  if t.valid.(slot) then begin
    if t.dirty.(slot) then writeback t slot;
    Hashtbl.remove t.set_index.(set) t.blkno.(slot);
    Metrics.incr t.metrics "flashcache.evictions" ~by:1
  end;
  t.blkno.(slot) <- new_blkno;
  t.valid.(slot) <- true;
  mark_dirty t slot false;
  Hashtbl.replace t.set_index.(set) new_blkno slot;
  slot

let write_data_block t slot data =
  Pmem.set_site t.pmem "fc.data";
  let off = slot_data_off t slot in
  Pmem.write t.pmem ~off data;
  if t.cfg.flush_writes then Pmem.persist t.pmem ~off ~len:t.cfg.block_size
[@@pmem.defer
  "flush_writes=false deliberately models the paper's crash-unsafe no-flush baseline (§3.2); \
   with flush_writes=true every data write persists"]

let write t blkno data =
  if Bytes.length data <> t.cfg.block_size then invalid_arg "Flashcache.write: wrong block size";
  charge_op t;
  let slot =
    match lookup t blkno with
    | Some slot ->
        t.write_hits <- t.write_hits + 1;
        Metrics.incr t.metrics "flashcache.write_hits" ~by:1;
        slot
    | None ->
        t.write_misses <- t.write_misses + 1;
        Metrics.incr t.metrics "flashcache.write_misses" ~by:1;
        allocate_slot t blkno
  in
  write_data_block t slot data;
  mark_dirty t slot true;
  touch t slot;
  update_slot_metadata t slot;
  clean_set t (slot / t.cfg.associativity)

let read t blkno =
  charge_op t;
  match lookup t blkno with
  | Some slot ->
      t.read_hits <- t.read_hits + 1;
      Metrics.incr t.metrics "flashcache.read_hits" ~by:1;
      touch t slot;
      Pmem.read t.pmem ~off:(slot_data_off t slot) ~len:t.cfg.block_size
  | None ->
      t.read_misses <- t.read_misses + 1;
      Metrics.incr t.metrics "flashcache.read_misses" ~by:1;
      let data = Disk.read_block t.disk blkno in
      let slot = allocate_slot t blkno in
      write_data_block t slot data;
      touch t slot;
      update_slot_metadata t slot;
      data

let flush_all t =
  for slot = 0 to t.nslots - 1 do
    if t.valid.(slot) && t.dirty.(slot) then begin
      writeback t slot;
      mark_dirty t slot false;
      update_slot_metadata t slot
    end
  done

let contains t blkno = lookup t blkno <> None

let ratio a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b)
let write_hit_rate t = ratio t.write_hits t.write_misses
let read_hit_rate t = ratio t.read_hits t.read_misses

let cached_blocks t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.valid
