open Tinca_sim
module Block_io = Tinca_blockdev.Block_io

let log_src = Logs.Src.create "tinca.jbd2" ~doc:"JBD2-style journal"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Codec = Tinca_util.Codec
module Trace = Tinca_obs.Trace

type config = { start : int; len : int; checkpoint_threshold : float }

let default_threshold = 0.25

let magic_super = 0x4A42445355504231L (* "JBDSUPB1" *)
let magic_desc = 0x4A42444445534331L (* "JBDDESC1" *)
let magic_revoke = 0x4A4244524556_4B31L (* "JBDREVK1" *)
let magic_commit = 0x4A4244434F4D5431L (* "JBDCOMT1" *)

type txn = { seq : int; blocks : (int * bytes) list (* newest last *) }

type t = {
  cfg : config;
  io : Block_io.t;
  metrics : Metrics.t;
  clock : Clock.t option; (* tracing track; None = untraceable journal *)
  cap : int; (* log positions: len - 1 (superblock excluded) *)
  mutable head : int; (* monotonic next-write position *)
  mutable tail : int; (* monotonic oldest live position *)
  mutable next_seq : int;
  mutable pending : txn list; (* committed, not yet checkpointed; oldest first *)
  (* Page-cache stand-in: newest committed-but-not-checkpointed version
     per home block.  Ext4 serves such reads from the page cache; without
     this, readers would see pre-commit contents until checkpoint. *)
  overlay : (int, bytes) Hashtbl.t;
}

let bs t = t.io.Block_io.block_size
let per_desc t = (bs t - 24) / 8
let pos_block t pos = t.cfg.start + 1 + (pos mod t.cap)

let used_blocks t = t.head - t.tail
let capacity_blocks t = t.cap
let pending_txns t = List.length t.pending

let write_super t =
  let b = Bytes.make (bs t) '\000' in
  Codec.set_u64 b 0 magic_super;
  Codec.set_u64_int b 8 t.next_seq;
  Codec.set_u64_int b 16 t.tail;
  let crc = Codec.crc32 b ~pos:0 ~len:24 in
  Bytes.set_int32_le b 24 crc;
  t.io.Block_io.write_block t.cfg.start b

let check_config ~config ~io =
  if config.len < 8 then invalid_arg "Jbd2.Journal: journal area too small";
  if config.start < 0 || config.start + config.len > io.Block_io.nblocks then
    invalid_arg "Jbd2.Journal: journal area out of device range"

(* Wrap [f] in a traced span when the journal has a clock. *)
let span t name f =
  match t.clock with
  | None -> f ()
  | Some clock ->
      Trace.begin_span ~clock name;
      let r = f () in
      Trace.end_span name;
      r

let format ?clock ~config ~io ~metrics () =
  check_config ~config ~io;
  let t = { cfg = config; io; metrics; clock; cap = config.len - 1; head = 0; tail = 0;
            next_seq = 1; pending = []; overlay = Hashtbl.create 256 } in
  write_super t;
  t

(* --- on-journal block codecs --- *)

let make_tagged t magic seq count =
  let b = Bytes.make (bs t) '\000' in
  Codec.set_u64 b 0 magic;
  Codec.set_u64_int b 8 seq;
  Codec.set_u32 b 16 count;
  b

let parse_tagged t block =
  if Bytes.length block <> bs t then None
  else
    let magic = Codec.get_u64 block 0 in
    if
      Int64.equal magic magic_desc || Int64.equal magic magic_revoke
      || Int64.equal magic magic_commit
    then Some (magic, Codec.get_u64_int block 8, Codec.get_u32 block 16)
    else None

(* --- checkpoint (the second write of the double write) --- *)

let checkpoint t =
  if t.pending <> [] then
    span t "jbd2.checkpoint" (fun () ->
        (* Newest version per home block wins; each is written once. *)
        let latest = Hashtbl.create 64 in
        let order = ref [] in
        List.iter
          (fun txn ->
            List.iter
              (fun (blkno, data) ->
                if not (Hashtbl.mem latest blkno) then order := blkno :: !order;
                Hashtbl.replace latest blkno data)
              txn.blocks)
          t.pending;
        (* Checkpoint in home-block order (the block layer's elevator). *)
        List.iter
          (fun blkno ->
            t.io.Block_io.write_block blkno (Hashtbl.find latest blkno);
            Metrics.incr t.metrics "jbd2.checkpoint_writes" ~by:1)
          (List.sort compare !order);
        t.pending <- [];
        Hashtbl.reset t.overlay;
        t.tail <- t.head;
        write_super t;
        Metrics.incr t.metrics "jbd2.checkpoints" ~by:1)

(* Newest committed-but-not-checkpointed version of a home block, if any
   (the page-cache read path). *)
let read_cached t blkno = Option.map Bytes.copy (Hashtbl.find_opt t.overlay blkno)

(* --- transactions --- *)

type handle = {
  journal : t;
  staged : (int, bytes) Hashtbl.t;
  mutable order : int list; (* reversed insertion order *)
  mutable revoked : int list;
  mutable finished : bool;
}

let init_txn t = { journal = t; staged = Hashtbl.create 16; order = []; revoked = []; finished = false }

let stage h blkno data =
  if h.finished then invalid_arg "Jbd2.stage: transaction finished";
  if Bytes.length data <> bs h.journal then invalid_arg "Jbd2.stage: wrong block size";
  if not (Hashtbl.mem h.staged blkno) then h.order <- blkno :: h.order;
  Hashtbl.replace h.staged blkno (Bytes.copy data)

let revoke h blkno =
  if h.finished then invalid_arg "Jbd2.revoke: transaction finished";
  h.revoked <- blkno :: h.revoked

let block_count h = Hashtbl.length h.staged

let write_at t pos block = t.io.Block_io.write_block (pos_block t pos) block

(* Split [ids] into chunks of at most [k]. *)
let chunks k ids =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = k then go (List.rev cur :: acc) [ x ] 1 rest else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 ids

let commit h =
  if h.finished then invalid_arg "Jbd2.commit: transaction finished";
  h.finished <- true;
  let t = h.journal in
  let ids = List.rev h.order in
  let n = List.length ids in
  if n = 0 && h.revoked = [] then ()
  else begin
    let desc_chunks = chunks (per_desc t) ids in
    let revoke_chunks = chunks (per_desc t) h.revoked in
    let needed = n + List.length desc_chunks + List.length revoke_chunks + 1 in
    if needed > t.cap then invalid_arg "Jbd2.commit: transaction larger than journal";
    span t "jbd2.commit" (fun () ->
        if used_blocks t + needed > t.cap then checkpoint t;
        let seq = t.next_seq in
        let pos = ref t.head in
        let emit block =
          write_at t !pos block;
          incr pos
        in
        (* Descriptor block followed by its log blocks, repeated. *)
        List.iter
          (fun chunk ->
            let d = make_tagged t magic_desc seq (List.length chunk) in
            List.iteri (fun i blkno -> Codec.set_u64_int d (24 + (i * 8)) blkno) chunk;
            emit d;
            List.iter
              (fun blkno ->
                emit (Hashtbl.find h.staged blkno);
                Metrics.incr t.metrics "jbd2.blocks_logged" ~by:1)
              chunk)
          desc_chunks;
        List.iter
          (fun chunk ->
            let r = make_tagged t magic_revoke seq (List.length chunk) in
            List.iteri (fun i blkno -> Codec.set_u64_int r (24 + (i * 8)) blkno) chunk;
            emit r)
          revoke_chunks;
        emit (make_tagged t magic_commit seq n);
        t.head <- !pos;
        t.next_seq <- seq + 1;
        let blocks = List.map (fun blkno -> (blkno, Hashtbl.find h.staged blkno)) ids in
        t.pending <- t.pending @ [ { seq; blocks } ];
        List.iter (fun (blkno, data) -> Hashtbl.replace t.overlay blkno data) blocks;
        Metrics.incr t.metrics "jbd2.commits" ~by:1;
        if
          float_of_int (used_blocks t) > t.cfg.checkpoint_threshold *. float_of_int t.cap
        then checkpoint t)
  end

(* --- recovery --- *)

type scanned = {
  s_seq : int;
  s_blocks : (int * bytes) list;
  s_revoked : int list;
}

let read_super ~config ~(io : Block_io.t) =
  let b = io.Block_io.read_block config.start in
  if not (Int64.equal (Codec.get_u64 b 0) magic_super) then
    failwith "Jbd2.Journal: unformatted journal (bad magic)";
  let crc = Codec.crc32 b ~pos:0 ~len:24 in
  if not (Int32.equal crc (Bytes.get_int32_le b 24)) then
    failwith "Jbd2.Journal: corrupt journal superblock";
  (Codec.get_u64_int b 8, Codec.get_u64_int b 16)

let recover ?clock ~config ~io ~metrics () =
  check_config ~config ~io;
  let s_seq, s_tail = read_super ~config ~io in
  let t = { cfg = config; io; metrics; clock; cap = config.len - 1; head = s_tail;
            tail = s_tail; next_seq = s_seq; pending = []; overlay = Hashtbl.create 256 } in
  span t "jbd2.recover" (fun () ->
  let read_at pos = io.Block_io.read_block (pos_block t pos) in
  (* Pass 1: scan forward collecting fully committed transactions. *)
  let txns = ref [] in
  let pos = ref s_tail in
  let seq = ref s_seq in
  let scanning = ref true in
  while !scanning && !pos - s_tail < t.cap do
    (* Scan one transaction starting at !pos with sequence !seq. *)
    let tpos = ref !pos in
    let blocks = ref [] in
    let revoked = ref [] in
    let committed = ref false in
    let broken = ref false in
    let in_txn = ref true in
    while !in_txn && not !broken && !tpos - s_tail < t.cap do
      match parse_tagged t (read_at !tpos) with
      | Some (m, tag_seq, count) when tag_seq = !seq && Int64.equal m magic_desc ->
          let d = read_at !tpos in
          incr tpos;
          let ids = List.init count (fun i -> Codec.get_u64_int d (24 + (i * 8))) in
          if !tpos + count - s_tail > t.cap then broken := true
          else
            List.iter
              (fun blkno ->
                blocks := (blkno, read_at !tpos) :: !blocks;
                incr tpos)
              ids
      | Some (m, tag_seq, count) when tag_seq = !seq && Int64.equal m magic_revoke ->
          let r = read_at !tpos in
          incr tpos;
          for i = 0 to count - 1 do
            revoked := Codec.get_u64_int r (24 + (i * 8)) :: !revoked
          done
      | Some (m, tag_seq, _count) when tag_seq = !seq && Int64.equal m magic_commit ->
          incr tpos;
          committed := true;
          in_txn := false
      | _ -> broken := true
    done;
    if !committed then begin
      txns := { s_seq = !seq; s_blocks = List.rev !blocks; s_revoked = !revoked } :: !txns;
      pos := !tpos;
      incr seq
    end
    else scanning := false
  done;
  let txns = List.rev !txns in
  (* Pass 2: collect revocations (a revoke in txn S suppresses replay of
     that block from any txn with sequence <= S), then replay. *)
  let revoke_seq = Hashtbl.create 16 in
  List.iter
    (fun txn ->
      List.iter
        (fun blkno ->
          let cur = match Hashtbl.find_opt revoke_seq blkno with Some s -> s | None -> -1 in
          if txn.s_seq > cur then Hashtbl.replace revoke_seq blkno txn.s_seq)
        txn.s_revoked)
    txns;
  List.iter
    (fun txn ->
      List.iter
        (fun (blkno, data) ->
          let revoked =
            match Hashtbl.find_opt revoke_seq blkno with
            | Some s -> s >= txn.s_seq
            | None -> false
          in
          if not revoked then begin
            io.Block_io.write_block blkno data;
            Metrics.incr metrics "jbd2.replayed" ~by:1
          end)
        txn.s_blocks)
    txns;
  (* Reset to a clean, empty journal past the replayed region. *)
  t.head <- !pos;
  t.tail <- !pos;
  t.next_seq <- !seq;
  write_super t;
  Metrics.incr metrics "jbd2.recoveries" ~by:1;
  Log.info (fun m ->
      m "journal recovery: %d committed transactions replayed up to sequence %d"
        (List.length txns) (!seq - 1));
  t)
