(** JBD2-style redo journal — the top layer of the Classic stack
    (paper §2.3, Fig 2).

    On-journal format, all in 4 KB blocks written through an underlying
    {!Tinca_blockdev.Block_io} (in the Classic stack: the Flashcache over
    NVM, so every journal block is absorbed — and amplified — by the
    cache):

    - a {e journal superblock} summarizing geometry and where recovery
      must start (sequence number + block offset);
    - per transaction: one or more {e descriptor blocks} naming the home
      locations of the data that follows, the {e log blocks} (verbatim
      copies — the first write of the double write), optional {e revoke
      blocks}, and a {e commit block} that seals the transaction;
    - {e checkpointing} later writes every committed block to its home
      location (the second write) and advances the journal tail.

    Counters: ["jbd2.commits"], ["jbd2.blocks_logged"],
    ["jbd2.checkpoints"], ["jbd2.checkpoint_writes"], ["jbd2.replayed"]. *)

type t

type config = {
  start : int;                   (** first block of the journal area *)
  len : int;                     (** blocks in the journal area (≥ 8) *)
  checkpoint_threshold : float;  (** checkpoint when used/capacity exceeds this (default 0.25) *)
}

val default_threshold : float

(** [format ?clock ~config ~io ~metrics] initializes an empty journal.
    [clock] names the tracing track journal spans land on. *)
val format :
  ?clock:Tinca_sim.Clock.t ->
  config:config -> io:Tinca_blockdev.Block_io.t -> metrics:Tinca_sim.Metrics.t -> unit -> t

(** [recover ~config ~io ~metrics] replays every fully committed
    transaction found after the superblock's start position into its home
    blocks (redo), discards any trailing partial transaction, and returns
    a clean journal. *)
val recover :
  ?clock:Tinca_sim.Clock.t ->
  config:config -> io:Tinca_blockdev.Block_io.t -> metrics:Tinca_sim.Metrics.t -> unit -> t

(** {1 Transactions} *)

type handle

(** Start a running transaction (DRAM-resident). *)
val init_txn : t -> handle

(** Stage a block; staging the same home block twice keeps the newest. *)
val stage : handle -> int -> bytes -> unit

(** Record a revoked (truncated) block: it will not be replayed from this
    or earlier transactions during recovery. *)
val revoke : handle -> int -> unit

val block_count : handle -> int

(** Write descriptor + log + revoke + commit blocks through the
    underlying device; on return the transaction is committed.  May
    trigger a checkpoint first to make room.  Raises [Invalid_argument]
    if the transaction cannot fit even an empty journal. *)
val commit : handle -> unit

(** Force a checkpoint: write every pending committed block to its home
    location (newest version per block once), advance the tail, persist
    the superblock. *)
val checkpoint : t -> unit

(** Committed-but-not-checkpointed transactions. *)
val pending_txns : t -> int

(** Journal blocks currently holding live (uncheckpointed) data. *)
val used_blocks : t -> int

val capacity_blocks : t -> int

(** Newest committed-but-not-checkpointed version of a home block, if any
    — the stand-in for Ext4's page cache on the read path.  Readers above
    the journal must consult this before the cache/disk, otherwise they
    would observe pre-commit contents until the next checkpoint. *)
val read_cached : t -> int -> bytes option
