open Tinca_sim
module Disk = Tinca_blockdev.Disk
module Cache = Tinca_core.Cache
module Shard = Tinca_core.Shard
module Layout = Tinca_core.Layout
module Histogram = Tinca_util.Histogram

(* Re-exported with type equations, so facade users and the retained
   Cache interface agree on the same constructors. *)
type write_policy = Cache.mode = Write_back | Write_through
type pipeline = Cache.pipeline = Per_block | Batched

module Config = struct
  type t = {
    nvm_bytes : int;
    block_size : int;
    ring_slots : int;
    nshards : int;
    commit_pipeline : pipeline;
    flush_instr : Latency.flush_instr;
    write_policy : write_policy;
    clean_threshold : float;
    alloc_policy : Tinca_cachelib.Free_monitor.policy;
  }

  let default =
    {
      nvm_bytes = 8 * 1024 * 1024;
      block_size = Cache.default_config.Cache.block_size;
      ring_slots = Cache.default_config.Cache.ring_slots;
      nshards = 1;
      commit_pipeline = Cache.default_config.Cache.commit_pipeline;
      flush_instr = Latency.Clflush;
      write_policy = Cache.default_config.Cache.mode;
      clean_threshold = Cache.default_config.Cache.clean_threshold;
      alloc_policy = Cache.default_config.Cache.alloc_policy;
    }

  let validate c =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    if c.block_size <= 0 || c.block_size mod 64 <> 0 then
      err "block_size %d must be a positive multiple of 64" c.block_size
    else if c.ring_slots <= 0 then err "ring_slots %d must be positive" c.ring_slots
    else if c.nshards < 1 || c.nshards > Shard.max_shards then
      err "nshards %d not in [1, %d]" c.nshards Shard.max_shards
    else if not (c.clean_threshold > 0.0 && c.clean_threshold <= 1.0) then
      err "clean_threshold %g not in (0, 1]" c.clean_threshold
    else if c.nvm_bytes <= 0 then err "nvm_bytes %d must be positive" c.nvm_bytes
    else
      (* Geometry must fit: every shard's span must host the ring plus at
         least one data block and entry — the same check Layout.compute
         performs, applied to the tightest shard. *)
      let span = (c.nvm_bytes - 128) / c.nshards / 64 * 64 in
      if span < 64 then
        err "nvm_bytes %d too small for %d shards" c.nvm_bytes c.nshards
      else
        match
          Layout.compute_at ~base:0 ~pmem_bytes:span ~block_size:c.block_size
            ~ring_slots:c.ring_slots
        with
        | _ -> Ok c
        | exception Invalid_argument _ ->
            err "nvm_bytes %d cannot host %d shard(s) of block_size %d with %d ring slots"
              c.nvm_bytes c.nshards c.block_size c.ring_slots

  let to_cache_config c =
    {
      Cache.block_size = c.block_size;
      ring_slots = c.ring_slots;
      mode = c.write_policy;
      clean_threshold = c.clean_threshold;
      alloc_policy = c.alloc_policy;
      commit_pipeline = c.commit_pipeline;
    }
end

type error =
  | Transaction_too_large
  | Txn_not_running
  | Wrong_block_size of { expected : int; got : int }
  | Block_out_of_range of int
  | Unformatted of string
  | Invalid_config of string

let error_message = function
  | Transaction_too_large -> "transaction too large for the cache geometry"
  | Txn_not_running -> "transaction not running"
  | Wrong_block_size { expected; got } ->
      Printf.sprintf "wrong block size: expected %d, got %d" expected got
  | Block_out_of_range b -> Printf.sprintf "disk block %d out of range" b
  | Unformatted m -> m
  | Invalid_config m -> Printf.sprintf "invalid config: %s" m

let pp_error fmt e = Format.pp_print_string fmt (error_message e)

(* The 1:1 bridge to the exception-based Cache interface, used by the
   stack builders (whose Backend contract is exception-based) and pinned
   by the facade round-trip tests.  I/O-shaped errors keep their payload
   (Io_error) instead of flattening into Failure — a caller catching the
   bridge must be able to tell bad media from bad arguments. *)
exception Io_error of error

let () =
  Printexc.register_printer (function
    | Io_error e -> Some (Printf.sprintf "Tinca.Io_error: %s" (error_message e))
    | _ -> None)

let to_exn = function
  | Transaction_too_large -> Cache.Transaction_too_large
  | Unformatted _ as e -> Io_error e
  | (Txn_not_running | Wrong_block_size _ | Block_out_of_range _ | Invalid_config _) as e ->
      Invalid_argument ("Tinca: " ^ error_message e)

let of_exn = function
  | Cache.Transaction_too_large -> Some Transaction_too_large
  (* Cache_exhausted is the raw allocator signal the commit path
     normally rewrites into Transaction_too_large; a stray one crossing
     the bridge is the same geometry-pressure class. *)
  | Cache.Cache_exhausted -> Some Transaction_too_large
  | Io_error e -> Some e
  | _ -> None

let ok_exn = function Ok v -> v | Error e -> raise (to_exn e)

type t = {
  shard : Shard.t;
  nblocks : int; (* disk blocks, for the range check *)
  block_size : int;
  txn_sizes : Histogram.t;
      (* cross-shard blocks-per-commit distribution; the per-shard Cache
         histograms only see their own sub-commits *)
}

let of_shard ~disk shard =
  {
    shard;
    nblocks = Disk.nblocks disk;
    block_size = (Cache.config (Shard.cache shard 0)).Cache.block_size;
    txn_sizes = Histogram.create ();
  }

let format ~config ~pmem ~disk ~clock ~metrics =
  match Config.validate config with
  | Error m -> Error (Invalid_config m)
  | Ok config -> (
      match
        Shard.format ~nshards:config.Config.nshards
          ~config:(Config.to_cache_config config) ~pmem ~disk ~clock ~metrics
      with
      | shard -> Ok (of_shard ~disk shard)
      | exception Invalid_argument m -> Error (Invalid_config m))

let recover ~pmem ~disk ~clock ~metrics =
  match Shard.recover ~pmem ~disk ~clock ~metrics with
  | shard -> Ok (of_shard ~disk shard)
  | exception Cache.Corrupt m -> Error (Unformatted m)

(* --- introspection ------------------------------------------------------ *)

let shard t = t.shard
let nshards t = Shard.nshards t.shard
let block_size t = t.block_size
let layouts t = Array.to_list (Array.map Cache.layout (Shard.caches t.shard))
let stats t = Shard.stats t.shard
let stats_kv t = Shard.stats_kv (Shard.stats t.shard)
let check_invariants t = Shard.check_invariants t.shard
let txn_size_histogram t = t.txn_sizes

let write_hit_rate t =
  let s = Shard.stats t.shard in
  s.Shard.agg.Cache.write_hit_ratio

let peak_cow_blocks t =
  let s = Shard.stats t.shard in
  s.Shard.agg.Cache.peak_cow

(* --- the paper's primitives -------------------------------------------- *)

type txn = { owner : t; h : Shard.Txn.handle; mutable live : bool }

let init_txn t = { owner = t; h = Shard.Txn.init t.shard; live = true }

let check_block t blkno = blkno >= 0 && blkno < t.nblocks

let write txn blkno data =
  if not txn.live then Error Txn_not_running
  else if Bytes.length data <> txn.owner.block_size then
    Error (Wrong_block_size { expected = txn.owner.block_size; got = Bytes.length data })
  else if not (check_block txn.owner blkno) then Error (Block_out_of_range blkno)
  else Ok (Shard.Txn.add txn.h blkno data)

let commit txn =
  if not txn.live then Error Txn_not_running
  else begin
    txn.live <- false;
    let n = Shard.Txn.block_count txn.h in
    match Shard.Txn.commit txn.h with
    | () ->
        Histogram.add txn.owner.txn_sizes (float_of_int n);
        Ok ()
    | exception Cache.Transaction_too_large -> Error Transaction_too_large
  end

let abort txn =
  if not txn.live then Error Txn_not_running
  else begin
    txn.live <- false;
    Ok (Shard.Txn.abort txn.h)
  end

let read t blkno =
  if not (check_block t blkno) then Error (Block_out_of_range blkno)
  else Ok (Shard.read t.shard blkno)

let write_direct t blkno data =
  if Bytes.length data <> t.block_size then
    Error (Wrong_block_size { expected = t.block_size; got = Bytes.length data })
  else if not (check_block t blkno) then Error (Block_out_of_range blkno)
  else
    match Shard.write_direct t.shard blkno data with
    | () ->
        Histogram.add t.txn_sizes 1.0;
        Ok ()
    | exception Cache.Transaction_too_large -> Error Transaction_too_large

let sync t = Array.iter Cache.flush_all (Shard.caches t.shard)
