open Tinca_sim
module Disk = Tinca_blockdev.Disk
module Cache = Tinca_core.Cache
module Shard = Tinca_core.Shard
module Layout = Tinca_core.Layout
module Paging = Tinca_core.Paging
module Commit_scheme = Tinca_core.Commit_scheme
module Histogram = Tinca_util.Histogram
module Trace = Tinca_obs.Trace
module Flight = Tinca_obs.Flight
module Forensics = Tinca_obs.Forensics

(* Re-exported with type equations, so facade users and the retained
   Cache interface agree on the same constructors. *)
type write_policy = Cache.mode = Write_back | Write_through
type pipeline = Cache.pipeline = Per_block | Batched

module Config = struct
  (* Paging-scheme knobs (the logging pipeline's knobs — ring_slots,
     commit_pipeline — do not apply to paging, and vice versa). *)
  type page_cfg = {
    page_headroom : int;
        (* free page frames admission keeps in reserve beyond a
           transaction's own demand; >= 0 *)
  }

  let default_page_cfg = { page_headroom = 0 }

  (* The one validated commit-scheme choice (ISSUE 10): the logging
     ring pipeline in either of its variants, or COW paging through a
     persistent indirection table. *)
  type scheme = Logging of pipeline | Paging of page_cfg

  type t = {
    nvm_bytes : int;
    block_size : int;
    ring_slots : int;
    nshards : int;
    commit_scheme : scheme;
    commit_pipeline : pipeline;
        (* DEPRECATED shim: pre-ISSUE-10 spelling of [Logging pipeline].
           When [commit_scheme] is left at its default, a non-default
           [commit_pipeline] still selects the pipeline; [validate]
           normalizes the two fields to agree. *)
    flush_instr : Latency.flush_instr;
    write_policy : write_policy;
    clean_threshold : float;
    alloc_policy : Tinca_cachelib.Free_monitor.policy;
    group_window_ns : int;
    group_max_batch : int;
    flight_slots : int;
  }

  let default =
    {
      nvm_bytes = 8 * 1024 * 1024;
      block_size = Cache.default_config.Cache.block_size;
      ring_slots = Cache.default_config.Cache.ring_slots;
      nshards = 1;
      commit_scheme = Logging Cache.default_config.Cache.commit_pipeline;
      commit_pipeline = Cache.default_config.Cache.commit_pipeline;
      flush_instr = Latency.Clflush;
      write_policy = Cache.default_config.Cache.mode;
      clean_threshold = Cache.default_config.Cache.clean_threshold;
      alloc_policy = Cache.default_config.Cache.alloc_policy;
      group_window_ns = 0;
      group_max_batch = 32;
      flight_slots = 0;
    }

  (* Resolve the deprecation shim: an untouched [commit_scheme] defers
     to [commit_pipeline] (the old spelling); anything else wins. *)
  let effective_scheme c =
    match c.commit_scheme with
    | Logging Batched when c.commit_pipeline <> Batched -> Logging c.commit_pipeline
    | s -> s

  let scheme_name = function Logging _ -> "logging" | Paging _ -> "paging"

  let validate c =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let scheme = effective_scheme c in
    if c.block_size <= 0 || c.block_size mod 64 <> 0 then
      err "block_size %d must be a positive multiple of 64" c.block_size
    else if c.ring_slots <= 0 then err "ring_slots %d must be positive" c.ring_slots
    else if c.nshards < 1 || c.nshards > Shard.max_shards then
      err "nshards %d not in [1, %d]" c.nshards Shard.max_shards
    else if not (c.clean_threshold > 0.0 && c.clean_threshold <= 1.0) then
      err "clean_threshold %g not in (0, 1]" c.clean_threshold
    else if c.nvm_bytes <= 0 then err "nvm_bytes %d must be positive" c.nvm_bytes
    else if c.group_window_ns < 0 then
      err "group_window_ns %d must be non-negative" c.group_window_ns
    else if c.group_max_batch < 1 then
      err "group_max_batch %d must be positive" c.group_max_batch
    else if c.flight_slots < 0 then err "flight_slots %d must be non-negative" c.flight_slots
    else
      match scheme with
      | Logging pipeline ->
          if c.group_window_ns > 0 && pipeline <> Batched then
            err "group_window_ns requires the Batched commit pipeline"
          else
            (* Geometry must fit: every shard's span must host the ring
               plus at least one data block and entry — the same check
               Layout.compute performs, applied to the tightest shard. *)
            let span = (c.nvm_bytes - 128) / c.nshards / 64 * 64 in
            if span < 64 then err "nvm_bytes %d too small for %d shards" c.nvm_bytes c.nshards
            else (
              match
                Layout.compute_flight ~flight_slots:c.flight_slots ~base:0 ~pmem_bytes:span
                  ~block_size:c.block_size ~ring_slots:c.ring_slots
              with
              | _ -> Ok { c with commit_scheme = scheme; commit_pipeline = pipeline }
              | exception Invalid_argument _ ->
                  err "nvm_bytes %d cannot host %d shard(s) of block_size %d with %d ring slots"
                    c.nvm_bytes c.nshards c.block_size c.ring_slots)
      | Paging pcfg ->
          if c.group_window_ns > 0 then
            err "the paging scheme has no group committer: group_window_ns must be 0"
          else if c.write_policy <> Write_back then
            err "the paging scheme is write-back only"
          else if pcfg.page_headroom < 0 then
            err "page_headroom %d must be non-negative" pcfg.page_headroom
          else (
            match
              Paging.check_geometry ~nshards:c.nshards ~pmem_bytes:c.nvm_bytes
                ~block_size:c.block_size ~flight_slots:c.flight_slots
            with
            | Ok () -> Ok { c with commit_scheme = scheme }
            | Error m -> Error m)

  let to_cache_config c =
    {
      Cache.block_size = c.block_size;
      ring_slots = c.ring_slots;
      mode = c.write_policy;
      clean_threshold = c.clean_threshold;
      alloc_policy = c.alloc_policy;
      commit_pipeline = c.commit_pipeline;
      flight_slots = c.flight_slots;
    }

  let to_page_config c pcfg =
    {
      Paging.block_size = c.block_size;
      flight_slots = c.flight_slots;
      headroom = pcfg.page_headroom;
    }

  (* The one CLI spelling of a scheme, shared by every subcommand. *)
  let scheme_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "logging" | "log" | "batched" -> Ok (Logging Batched)
    | "per-block" | "perblock" | "logging-per-block" -> Ok (Logging Per_block)
    | "paging" | "page" -> Ok (Paging default_page_cfg)
    | other ->
        Error
          (Printf.sprintf
             "unknown scheme %S (expected logging | per-block | paging)" other)

  (* Central CLI-to-config funnel (ISSUE 10 satellite): every
     tinca_bench / tinca_check subcommand builds its config through this
     one helper, so they all accept the same --scheme / --shards /
     --group-window / --flight-slots vocabulary and reject the same
     invalid combinations.  Unset arguments keep [base]'s values. *)
  let of_args ?(base = default) ?scheme ?shards ?group_window ?flight_slots ?ring_slots
      ?nvm_bytes () =
    let ( let* ) = Result.bind in
    let* scheme =
      match scheme with
      | None -> Ok (effective_scheme base)
      | Some s -> scheme_of_string s
    in
    let c =
      {
        base with
        commit_scheme = scheme;
        commit_pipeline = (match scheme with Logging p -> p | Paging _ -> base.commit_pipeline);
        nshards = Option.value ~default:base.nshards shards;
        group_window_ns = Option.value ~default:base.group_window_ns group_window;
        flight_slots = Option.value ~default:base.flight_slots flight_slots;
        ring_slots = Option.value ~default:base.ring_slots ring_slots;
        nvm_bytes = Option.value ~default:base.nvm_bytes nvm_bytes;
      }
    in
    validate c
end

type error =
  | Transaction_too_large
  | Txn_not_running
  | Wrong_block_size of { expected : int; got : int }
  | Block_out_of_range of int
  | Unformatted of string
  | Invalid_config of string

let error_message = function
  | Transaction_too_large -> "transaction too large for the cache geometry"
  | Txn_not_running -> "transaction not running"
  | Wrong_block_size { expected; got } ->
      Printf.sprintf "wrong block size: expected %d, got %d" expected got
  | Block_out_of_range b -> Printf.sprintf "disk block %d out of range" b
  | Unformatted m -> m
  | Invalid_config m -> Printf.sprintf "invalid config: %s" m

let pp_error fmt e = Format.pp_print_string fmt (error_message e)

(* The 1:1 bridge to the exception-based Cache interface, used by the
   stack builders (whose Backend contract is exception-based) and pinned
   by the facade round-trip tests.  I/O-shaped errors keep their payload
   (Io_error) instead of flattening into Failure — a caller catching the
   bridge must be able to tell bad media from bad arguments. *)
exception Io_error of error

let () =
  Printexc.register_printer (function
    | Io_error e -> Some (Printf.sprintf "Tinca.Io_error: %s" (error_message e))
    | _ -> None)

let to_exn = function
  | Transaction_too_large -> Cache.Transaction_too_large
  | Unformatted _ as e -> Io_error e
  | (Txn_not_running | Wrong_block_size _ | Block_out_of_range _ | Invalid_config _) as e ->
      Invalid_argument ("Tinca: " ^ error_message e)

let of_exn = function
  | Cache.Transaction_too_large -> Some Transaction_too_large
  (* Cache_exhausted is the raw allocator signal the commit path
     normally rewrites into Transaction_too_large; a stray one crossing
     the bridge is the same geometry-pressure class. *)
  | Cache.Cache_exhausted -> Some Transaction_too_large
  | Io_error e -> Some e
  | _ -> None

let ok_exn = function Ok v -> v | Error e -> raise (to_exn e)

(* A transaction acknowledged by [commit_async] but not yet drained by
   the group committer.  [handle] is the sealed shard-level handle the
   drain will commit; [ticket] is the caller-visible durability token. *)
type ticket = {
  t_owner : t;
  tk_id : int; (* durable-notification ticket id, named by flight records *)
  tk_blocks : int;
  sealed_at : float;
  mutable durable : bool;
  mutable durable_at : float;
  mutable callbacks : (unit -> unit) list; (* reversed registration order *)
}

and pending = { ph : Shard.Txn.handle; ticket : ticket; pblocks : int list }

and t = {
  engine : Commit_scheme.engine;
      (* the transparent view: group commit is logging-only, the paging
         region layouts feed psan *)
  packed : Commit_scheme.packed; (* the same engine behind the interface *)
  nblocks : int; (* disk blocks, for the range check *)
  block_size : int;
  txn_sizes : Histogram.t;
      (* cross-shard blocks-per-commit distribution; the per-shard Cache
         histograms only see their own sub-commits *)
  clock : Clock.t;
  metrics : Metrics.t;
  window_ns : int; (* Config.group_window_ns, captured at construction *)
  max_batch : int; (* Config.group_max_batch *)
  ring_slots : int; (* per shard — the conservative batch-capacity bound *)
  ack_to_durable : Histogram.t; (* commit_async return -> batch drain, ns *)
  group : group; (* the standing batch — the only mutable facade state *)
  forensics : Forensics.t option ref; (* dossier built at recover *)
}

(* Mutable group-committer state, split out so the handle record itself
   stays immutable (and so reads as such to the R1 lint). *)
and group = {
  mutable pending : pending list; (* newest first *)
  pending_blocks : (int, unit) Hashtbl.t; (* blocks written by pending txns *)
  mutable pending_slots : int; (* ring slots the pending batch has staged *)
  mutable batch_deadline : float; (* drain due time once pending <> [] *)
  mutable next_ticket : int; (* ticket ids issued, = next id *)
  mutable batches : int; (* drains that committed at least one txn *)
  mutable pending_high_water : int; (* peak batch population *)
  drains_by_cause : (string, int) Hashtbl.t; (* cause name -> drains *)
}

let of_engine ~disk ~clock ~metrics ~window_ns ~max_batch engine =
  let block_size, ring_slots =
    match engine with
    | Commit_scheme.Logging_engine shard ->
        let c = Cache.config (Shard.cache shard 0) in
        (c.Cache.block_size, c.Cache.ring_slots)
    | Commit_scheme.Paging_engine pg -> (Paging.block_size pg, max_int)
  in
  {
    engine;
    packed = Commit_scheme.pack engine;
    nblocks = Disk.nblocks disk;
    block_size;
    txn_sizes = Histogram.create ();
    clock;
    metrics;
    window_ns;
    max_batch;
    ring_slots;
    ack_to_durable = Histogram.create ();
    group =
      { pending = []; pending_blocks = Hashtbl.create 64; pending_slots = 0;
        batch_deadline = 0.0; next_ticket = 0; batches = 0; pending_high_water = 0;
        drains_by_cause = Hashtbl.create 8 };
    forensics = ref None;
  }

let format ~config ~pmem ~disk ~clock ~metrics =
  match Config.validate config with
  | Error m -> Error (Invalid_config m)
  | Ok config -> (
      match
        match config.Config.commit_scheme with
        | Config.Logging _ ->
            Commit_scheme.Logging_engine
              (Shard.format ~nshards:config.Config.nshards
                 ~config:(Config.to_cache_config config) ~pmem ~disk ~clock ~metrics)
        | Config.Paging pcfg ->
            Commit_scheme.Paging_engine
              (Paging.format ~nshards:config.Config.nshards
                 ~config:(Config.to_page_config config pcfg) ~pmem ~disk ~clock ~metrics)
      with
      | engine ->
          Ok
            (of_engine ~disk ~clock ~metrics ~window_ns:config.Config.group_window_ns
               ~max_batch:config.Config.group_max_batch engine)
      | exception Invalid_argument m -> Error (Invalid_config m))

let recover ~pmem ~disk ~clock ~metrics =
  match Commit_scheme.recover ~pmem ~disk ~clock ~metrics () with
  | engine ->
      let t = of_engine ~disk ~clock ~metrics ~window_ns:0 ~max_batch:32 engine in
      (* Post-crash dossier: reconcile recorder-acked commits against the
         just-recovered cache state.  The probe answers "does this block
         now carry the payload sealed into the dead batch?" by CRC. *)
      let scans = Commit_scheme.flight_scans t.packed in
      if Array.exists (fun (recs, torn) -> recs <> [] || torn > 0) scans then begin
        let probe ~shard:_ ~blkno ~crc =
          match Commit_scheme.peek t.packed blkno with
          | Some data ->
              Int32.to_int (Tinca_util.Codec.crc32 data ~pos:0 ~len:(Bytes.length data))
              land 0xFFFF_FFFF
              = crc
          | None -> false
        in
        t.forensics := Some (Forensics.build ~shards:scans ~probe ())
      end;
      Ok t
  | exception Cache.Corrupt m -> Error (Unformatted m)

(* The dossier from the last {!recover} on this handle, when the media
   carried a flight ring with any surviving or torn records. *)
let last_crash_report t = !(t.forensics)

(* --- introspection ------------------------------------------------------ *)

let scheme t =
  match t.engine with
  | Commit_scheme.Logging_engine _ -> Config.Logging Batched
  | Commit_scheme.Paging_engine _ -> Config.Paging Config.default_page_cfg

let scheme_name t = Commit_scheme.scheme_name t.engine

(* Logging-only escape hatches: callers that reach below the commit
   scheme (per-shard stats, ring layouts, group commit) must be on the
   logging engine; asking on paging media is a usage error, not a zero. *)
let log_shard ~who t =
  match t.engine with
  | Commit_scheme.Logging_engine shard -> shard
  | Commit_scheme.Paging_engine _ ->
      invalid_arg (Printf.sprintf "Tinca.%s: logging-scheme-only (this cache is paging)" who)

let page ~who t =
  match t.engine with
  | Commit_scheme.Paging_engine pg -> pg
  | Commit_scheme.Logging_engine _ ->
      invalid_arg (Printf.sprintf "Tinca.%s: paging-scheme-only (this cache is logging)" who)

let shard t = log_shard ~who:"shard" t
let paging t = page ~who:"paging" t
let nshards t = Commit_scheme.nshards t.packed
let block_size t = t.block_size
let layouts t = Array.to_list (Array.map Cache.layout (Shard.caches (log_shard ~who:"layouts" t)))
let page_layouts t = Paging.region_layouts (page ~who:"page_layouts" t)
let stats t = Shard.stats (log_shard ~who:"stats" t)

(* Scheme-aware stats: each engine reports its own vocabulary — under
   paging the logging-only rows (ring high water, role switches) are
   absent rather than zero-and-misleading, and vice versa.  The group
   rows describe the facade's committer, which only exists over the
   logging engine. *)
let stats_kv t =
  Commit_scheme.stats_kv t.packed
  @ (match t.engine with
    | Commit_scheme.Paging_engine _ -> []
    | Commit_scheme.Logging_engine _ ->
        [
          ("group_batches", string_of_int t.group.batches);
          ("group_pending", string_of_int (List.length t.group.pending));
          ("group_pending_high_water", string_of_int t.group.pending_high_water);
        ]
        @ (Hashtbl.fold
             (fun k v acc -> (("group_drains_" ^ k), string_of_int v) :: acc)
             t.group.drains_by_cause []
          |> List.sort compare))

let region_wear t = Commit_scheme.region_wear t.packed
let check_invariants t = Commit_scheme.check_invariants t.packed
let txn_size_histogram t = t.txn_sizes
let peek t blkno = Commit_scheme.peek t.packed blkno
let contains t blkno = Commit_scheme.contains t.packed blkno

let write_hit_rate t =
  match t.engine with
  | Commit_scheme.Logging_engine shard -> (Shard.stats shard).Shard.agg.Cache.write_hit_ratio
  | Commit_scheme.Paging_engine pg -> Paging.write_hit_rate pg

let peak_cow_blocks t =
  let s = Shard.stats (log_shard ~who:"peak_cow_blocks" t) in
  s.Shard.agg.Cache.peak_cow

(* --- the group committer (async commit, ISSUE 8) ------------------------ *)

(* Drain the pending batch: ONE Shard.commit_group over every sealed
   transaction acknowledged since the last drain, then mark their
   tickets durable and fire their callbacks.  The batch is atomic under
   crash (commit_group's contract), so the spec's crash candidates are
   exactly {without the batch, with the whole batch}.  The batch is only
   ever populated over the logging engine (validate rejects a group
   window under paging), so the empty-batch early return keeps this path
   scheme-safe. *)
let flush_pending ?(cause = Flight.Barrier) t =
  match t.group.pending with
  | [] -> ()
  | newest_first ->
      let batch = List.rev newest_first in
      t.group.pending <- [];
      Hashtbl.reset t.group.pending_blocks;
      t.group.pending_slots <- 0;
      t.group.batches <- t.group.batches + 1;
      (let key = Flight.cause_name cause in
       Hashtbl.replace t.group.drains_by_cause key
         (1 + Option.value ~default:0 (Hashtbl.find_opt t.group.drains_by_cause key)));
      Trace.begin_span ~clock:t.clock "tinca.group_commit";
      Trace.attr "txns" (string_of_int (List.length batch));
      Trace.attr "cause" (Flight.cause_name cause);
      Trace.attr "blocks"
        (string_of_int (List.fold_left (fun acc p -> acc + p.ticket.tk_blocks) 0 batch));
      let sf0 = Metrics.get t.metrics "pmem.sfence" in
      Shard.commit_group ~cause (log_shard ~who:"group_commit" t) (List.map (fun p -> p.ph) batch);
      Trace.attr "sfences" (string_of_int (Metrics.get t.metrics "pmem.sfence" - sf0));
      Trace.end_span "tinca.group_commit";
      let now = Clock.now_ns t.clock in
      List.iter
        (fun p ->
          let tk = p.ticket in
          tk.durable <- true;
          tk.durable_at <- now;
          Histogram.add t.txn_sizes (float_of_int tk.tk_blocks);
          Histogram.add t.ack_to_durable (now -. tk.sealed_at);
          let cbs = List.rev tk.callbacks in
          tk.callbacks <- [];
          List.iter (fun f -> f ()) cbs)
        batch;
      (* Close the per-ticket spans opened at seal time, newest first so
         the B/E nesting stays balanced (they all share one track). *)
      List.iter (fun _ -> Trace.end_span "tinca.commit_async") newest_first

let group_pending t = List.length t.group.pending
let group_flush t = flush_pending ~cause:Flight.Barrier t
let group_ack_to_durable t = t.ack_to_durable

(* Group-committer runtime counters (satellite of ISSUE 9): drained
   batches, drains split by cause, and the peak standing-batch size. *)
let group_batches t = t.group.batches
let group_pending_high_water t = t.group.pending_high_water

let group_drains_by_cause t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.group.drains_by_cause []
  |> List.sort compare

(* --- the paper's primitives -------------------------------------------- *)

type txn = {
  owner : t;
  pt : Commit_scheme.packed_txn; (* the scheme-interface handle *)
  lh : Shard.Txn.handle option;
      (* the same handle, transparent — present iff logging, for the
         group committer's seal path (logging-only by validation) *)
  mutable live : bool;
  mutable blocks : int list; (* staged block numbers, for conflict checks *)
}

let init_txn t =
  let pt, lh =
    match t.engine with
    | Commit_scheme.Logging_engine shard ->
        let h = Shard.Txn.init shard in
        (Commit_scheme.Txn ((module Commit_scheme.Logging), h), Some h)
    | Commit_scheme.Paging_engine pg ->
        (Commit_scheme.Txn ((module Commit_scheme.Paging_impl), Paging.Txn.init pg), None)
  in
  { owner = t; pt; lh; live = true; blocks = [] }

let check_block t blkno = blkno >= 0 && blkno < t.nblocks

let write txn blkno data =
  if not txn.live then Error Txn_not_running
  else if Bytes.length data <> txn.owner.block_size then
    Error (Wrong_block_size { expected = txn.owner.block_size; got = Bytes.length data })
  else if not (check_block txn.owner blkno) then Error (Block_out_of_range blkno)
  else begin
    txn.blocks <- blkno :: txn.blocks;
    Ok (Commit_scheme.stage txn.pt blkno data)
  end

let durable_ticket t n =
  let now = Clock.now_ns t.clock in
  let id = t.group.next_ticket in
  t.group.next_ticket <- id + 1;
  {
    t_owner = t;
    tk_id = id;
    tk_blocks = n;
    sealed_at = now;
    durable = true;
    durable_at = now;
    callbacks = [];
  }

(* [commit_async] — validate and volatilely seal NOW (later reads see
   the transaction immediately), return a ticket, and let the group
   committer amortize one durability sequence over every transaction
   sealed inside the window.  The batch drains when: the window
   deadline has passed (checked on the next commit_async), the batch
   hits [group_max_batch], a new transaction conflicts with a pending
   one (same block — the per-block COW chain is one level deep), the
   staged slots could overrun a ring, or someone awaits / syncs.

   With [group_window_ns = 0] this IS the synchronous pipeline — the
   sealed path is never entered, so media traffic, fences and the
   simulated clock match today's [commit] byte for byte.  The paging
   engine always takes the synchronous path (validate rejects a group
   window under paging). *)
let commit_async txn =
  if not txn.live then Error Txn_not_running
  else begin
    txn.live <- false;
    let t = txn.owner in
    let n = Commit_scheme.block_count txn.pt in
    match txn.lh with
    | _ when t.window_ns <= 0 || n = 0 -> (
        (* Synchronous fast path (and empty transactions, which carry no
           durability obligation): drain any standing batch first so
           commit order equals durability order. *)
        flush_pending ~cause:Flight.Sync t;
        match Commit_scheme.publish ~cause:Flight.Sync txn.pt with
        | () ->
            Histogram.add t.txn_sizes (float_of_int n);
            Ok (durable_ticket t n)
        | exception Cache.Transaction_too_large -> Error Transaction_too_large)
    | None ->
        (* Unreachable: window_ns > 0 is validated as logging-only. *)
        invalid_arg "Tinca.commit_async: group window over a non-logging engine"
    | Some lh -> begin
        if Clock.now_ns t.clock >= t.group.batch_deadline then
          flush_pending ~cause:Flight.Deadline t;
        if List.exists (fun b -> Hashtbl.mem t.group.pending_blocks b) txn.blocks then
          flush_pending ~cause:Flight.Conflict t;
        if t.group.pending_slots + n > t.ring_slots then
          flush_pending ~cause:Flight.Ring_pressure t;
        let id = t.group.next_ticket in
        Shard.Txn.set_flight_ticket lh id;
        match Shard.Txn.seal lh with
        | () ->
            t.group.next_ticket <- id + 1;
            let tk =
              {
                t_owner = t;
                tk_id = id;
                tk_blocks = n;
                sealed_at = Clock.now_ns t.clock;
                durable = false;
                durable_at = 0.0;
                callbacks = [];
              }
            in
            Trace.begin_span ~clock:t.clock "tinca.commit_async";
            Trace.attr "ticket" (string_of_int id);
            Trace.attr "blocks" (string_of_int n);
            if t.group.pending = [] then
              t.group.batch_deadline <- Clock.now_ns t.clock +. float_of_int t.window_ns;
            t.group.pending <- { ph = lh; ticket = tk; pblocks = txn.blocks } :: t.group.pending;
            List.iter (fun b -> Hashtbl.replace t.group.pending_blocks b ()) txn.blocks;
            t.group.pending_slots <- t.group.pending_slots + n;
            t.group.pending_high_water <-
              max t.group.pending_high_water (List.length t.group.pending);
            if List.length t.group.pending >= t.max_batch then
              flush_pending ~cause:Flight.Max_batch t;
            Ok tk
        | exception Cache.Transaction_too_large -> Error Transaction_too_large
      end
  end

let await tk =
  if not tk.durable then flush_pending ~cause:Flight.Await tk.t_owner;
  Ok ()

let ticket_durable tk = tk.durable
let ticket_id tk = tk.tk_id

let ticket_latency_ns tk = if tk.durable then Some (tk.durable_at -. tk.sealed_at) else None

let on_durable tk f = if tk.durable then f () else tk.callbacks <- f :: tk.callbacks

let commit txn =
  match commit_async txn with
  | Error _ as e -> e
  | Ok tk -> await tk

let abort txn =
  if not txn.live then Error Txn_not_running
  else begin
    txn.live <- false;
    Ok (Commit_scheme.abort txn.pt)
  end

let read t blkno =
  if not (check_block t blkno) then Error (Block_out_of_range blkno)
  else Ok (Commit_scheme.read t.packed blkno)

let write_direct t blkno data =
  if Bytes.length data <> t.block_size then
    Error (Wrong_block_size { expected = t.block_size; got = Bytes.length data })
  else if not (check_block t blkno) then Error (Block_out_of_range blkno)
  else begin
    (* The direct write commits synchronously through the scheme;
       drain the batch first so its staged slots stay newest. *)
    flush_pending ~cause:Flight.Sync t;
    match Commit_scheme.write_direct t.packed blkno data with
    | () ->
        Histogram.add t.txn_sizes 1.0;
        Ok ()
    | exception Cache.Transaction_too_large -> Error Transaction_too_large
  end

let sync t =
  flush_pending ~cause:Flight.Sync t;
  Commit_scheme.flush_all t.packed
