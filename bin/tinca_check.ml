(* Crash-consistency checker CLI.

   tinca_check                     - full sweep: every crash point of the
                                     default 6-commit workload, every
                                     survival subset of the torn lines
   tinca_check --commits 3 --cap 64  - quicker budgeted run
   tinca_check --psan              - persistence-sanitizer mode: run the
                                     Tinca, Classic (JBD2 + Flashcache)
                                     and raw-Flashcache stacks with the
                                     flush/fence sanitizer attached
   tinca_check --lockstep          - refinement mode: drive the executable
                                     spec and a real Tinca in lockstep over
                                     generated command sequences at N in
                                     {1,2,4}, judge every crash-recovered
                                     state by spec refinement, and
                                     self-validate the oracle with planted
                                     commit-path mutations

   Exit status 0 when every explored post-crash state recovers to a
   consistent prefix of the commit history (or, under --psan, when no
   ordering violation is flagged; or, under --lockstep, when all runs
   refine the spec and every planted mutation is caught); 1 when any
   violation is found (each is printed). *)

open Cmdliner
module Check = Tinca_checker.Crash_check
module Psan = Tinca_checker.Psan
module Lockstep = Tinca_checker.Lockstep
module FCheck = Tinca_checker.Flight_check
module Forensics = Tinca_obs.Forensics
module Stacks = Tinca_stacks.Stacks
module Backend = Tinca_fs.Backend
module Pmem = Tinca_pmem.Pmem
module Rng = Tinca_util.Rng

(* --- persistence-sanitizer mode ----------------------------------------- *)

(* Random commit/read mix through a stack's backend; [commit_blocks] is
   already bracketed with the sanitizer's transaction scope by
   [Stacks.instrument]. *)
let psan_workload ~commits ~universe ~seed (stack : Stacks.t) =
  let rng = Rng.create seed in
  for _ = 1 to commits do
    let n = 1 + Rng.int rng 4 in
    let blocks =
      List.init n (fun _ ->
          (Rng.int rng universe, Bytes.make 4096 (Char.chr (Rng.int rng 256))))
    in
    stack.Stacks.backend.Backend.commit_blocks blocks;
    if Rng.chance rng 0.3 then
      ignore (stack.Stacks.backend.Backend.read_block (Rng.int rng universe))
  done

let psan_summary label psan =
  let r = Psan.report psan in
  Printf.printf "\n== %s ==\n" label;
  Tinca_util.Tabular.print (Psan.report_table r);
  List.iter (fun v -> Format.printf "  %a@." Psan.pp_violation v) r.Psan.violations;
  Psan.violation_count psan

(* Group-commit phase: drive the facade's async path directly.  The
   sanitizer scope brackets a whole batch — [txn_begin] before the first
   [commit_async], [txn_end] only after every ticket's [await] — because
   under a nonzero window the acknowledgement point is the durable
   (await) point, not the commit_async return: unfenced-ack then checks
   that the ONE batched drain really made every store of the batch
   durable. *)
let run_psan_group ~commits ~seed ~universe ~shards ~window =
  let env = Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:universe () in
  let config =
    {
      Tinca.Config.default with
      Tinca.Config.nvm_bytes = Pmem.size env.Stacks.pmem;
      ring_slots = 256;
      nshards = shards;
      group_window_ns = window;
      group_max_batch = 8;
    }
  in
  let tc =
    Tinca.ok_exn
      (Tinca.format ~config ~pmem:env.Stacks.pmem ~disk:env.Stacks.disk ~clock:env.Stacks.clock
         ~metrics:env.Stacks.metrics)
  in
  let psan = Psan.attach ~layouts:(Tinca.layouts tc) env.Stacks.pmem in
  let rng = Rng.create (seed + 3) in
  for _ = 1 to commits do
    Psan.txn_begin psan;
    let nbatch = 1 + Rng.int rng 4 in
    let tickets =
      List.init nbatch (fun _ ->
          let txn = Tinca.init_txn tc in
          let n = 1 + Rng.int rng 3 in
          for _ = 1 to n do
            Tinca.ok_exn
              (Tinca.write txn (Rng.int rng universe)
                 (Bytes.make 4096 (Char.chr (Rng.int rng 256))))
          done;
          Tinca.ok_exn (Tinca.commit_async txn))
    in
    List.iter (fun tk -> Tinca.ok_exn (Tinca.await tk)) tickets;
    Psan.txn_end psan;
    if Rng.chance rng 0.3 then ignore (Tinca.ok_exn (Tinca.read tc (Rng.int rng universe)))
  done;
  Tinca.sync tc;
  let n =
    psan_summary
      (Printf.sprintf "Tinca (async group commit, window %d ns, %d shard%s)" window shards
         (if shards = 1 then "" else "s"))
      psan
  in
  Psan.detach psan;
  n

let run_psan commits seed universe shards group_window scheme =
  let nbad = ref 0 in
  (* Tinca: full region classification (layout-aware rules active, one
     layout per shard — logging ring regions or paging epoch/table/pool
     regions, per --scheme), including a crash + recovery + second
     workload phase. *)
  let env = Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:universe () in
  let config =
    match
      Tinca.Config.of_args
        ~base:{ Tinca.Config.default with Tinca.Config.ring_slots = 256 }
        ~scheme ~shards ~nvm_bytes:(512 * 1024) ()
    with
    | Ok c -> c
    | Error m ->
        Printf.eprintf "tinca_check --psan: %s\n" m;
        exit 2
  in
  let stack, psan = Stacks.instrument (Stacks.tinca ~config env) in
  psan_workload ~commits ~universe ~seed stack;
  Pmem.crash ~seed:(seed + 1) env.Stacks.pmem;
  (* The sanitizer stays attached across the crash (its shadow resets on
     the Crash event) and audits recovery's revocation writes too. *)
  let recovered = Stacks.tinca_recover env in
  let recommit blocks =
    Psan.txn_begin psan;
    match recovered.Stacks.backend.Backend.commit_blocks blocks with
    | () -> Psan.txn_end psan
    | exception e ->
        Psan.txn_abort psan;
        raise e
  in
  psan_workload ~commits:(max 1 (commits / 4)) ~universe ~seed:(seed + 2)
    { recovered with
      Stacks.backend = { recovered.Stacks.backend with Backend.commit_blocks = recommit } };
  nbad :=
    !nbad
    + psan_summary
        (Printf.sprintf "Tinca/%s (commit workload + crash recovery, %d shard%s)"
           (Tinca.Config.scheme_name (Tinca.Config.effective_scheme config))
           shards
           (if shards = 1 then "" else "s"))
        psan;
  Psan.detach psan;
  (* Classic: JBD2 journal over Flashcache.  No Tinca layout, so the
     unfenced-ack and redundant-flush rules carry the audit. *)
  let journal_len = 64 in
  let env =
    Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:(universe + journal_len) ()
  in
  let stack, psan = Stacks.instrument (Stacks.classic ~journal_len env) in
  psan_workload ~commits ~universe ~seed stack;
  stack.Stacks.backend.Backend.sync ();
  nbad := !nbad + psan_summary "Classic (JBD2 + Flashcache)" psan;
  Psan.detach psan;
  (* Raw Flashcache (no journal above it). *)
  let env = Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:universe () in
  let stack, psan = Stacks.instrument (Stacks.nojournal env) in
  psan_workload ~commits ~universe ~seed stack;
  stack.Stacks.backend.Backend.sync ();
  nbad := !nbad + psan_summary "Flashcache (no journal)" psan;
  Psan.detach psan;
  (* Async group-commit phase (ISSUE 8), when a window was given.  The
     group committer is logging-only (validated so), hence skipped under
     --scheme paging. *)
  (match Tinca.Config.effective_scheme config with
  | Tinca.Config.Logging _ when group_window > 0 ->
      nbad := !nbad + run_psan_group ~commits ~seed ~universe ~shards ~window:group_window
  | Tinca.Config.Paging _ when group_window > 0 ->
      Printf.printf "\n(group-commit psan phase skipped: the paging scheme has no group committer)\n"
  | _ -> ());
  if !nbad = 0 then begin
    Printf.printf "\npsan: no persistence-ordering violations across the three stacks.\n";
    0
  end
  else begin
    Printf.printf "\npsan: %d VIOLATION(S).\n" !nbad;
    1
  end

(* --- lockstep refinement mode -------------------------------------------- *)

(* Shrink a failing sequence and print it as a replayable OCaml value. *)
let print_repro ~fails cmds =
  let small = Lockstep.shrink ~fails cmds in
  Format.printf "  minimal reproducer (%d command%s):@.    %a@." (Array.length small)
    (if Array.length small = 1 then "" else "s")
    Lockstep.pp_cmds small;
  small

let geom ?(group_window = 0) ?(scheme = Lockstep.default_geometry.Lockstep.scheme) n =
  {
    Lockstep.default_geometry with
    Lockstep.nshards = n;
    group_window_ns = group_window;
    scheme;
  }

(* Lockstep equivalence over [seeds] generated sequences per shard
   count, once with synchronous commits and once through the async
   group-commit path (nonzero window, [gen_async] sequences carrying
   mixed acked/unacked transactions).  Returns the failure count (after
   printing shrunk repros). *)
let lockstep_equiv ~seeds ~len ~awin ~quiet ~scheme =
  let bad = ref 0 in
  let pass ~label ~window genf =
    List.iter
      (fun n ->
        let g = geom ~group_window:window ~scheme n in
        let ops = ref 0 and blocks = ref 0 in
        for seed = 1 to seeds do
          let cmds = genf ~seed ~len ~universe:g.Lockstep.universe in
          match Lockstep.run g cmds with
          | Ok s ->
              ops := !ops + s.Lockstep.ops;
              blocks := !blocks + s.Lockstep.blocks_compared
          | Error d ->
              incr bad;
              Format.printf "lockstep%s: DIVERGENCE at N=%d seed %d: %a@." label n seed
                Lockstep.pp_divergence d;
              ignore
                (print_repro ~fails:(fun c -> Result.is_error (Lockstep.run g c)) cmds)
        done;
        if not quiet then
          Printf.printf
            "lockstep%s: N=%d: %d seeds x %d commands clean (%d ops, %d blocks compared)\n"
            label n seeds len !ops !blocks)
      [ 1; 2; 4 ]
  in
  pass ~label:"" ~window:0 Lockstep.gen;
  (* The group committer is logging-only; under paging the async pass
     would be an invalid config. *)
  (match scheme with
  | Tinca.Config.Logging _ -> pass ~label:" (group)" ~window:awin Lockstep.gen_async
  | Tinca.Config.Paging _ -> ());
  !bad

(* Crash-space refinement: every recovered state of every explored
   survival subset must equal the spec (last acknowledged commit, or
   that plus the in-flight commit).  Budgeted by [cap] and [stride];
   coverage is printed, never silently truncated. *)
let lockstep_crash ~len ~cap ~stride ~awin ~quiet ~scheme =
  let bad = ref 0 in
  (* Pick the first seed whose sequence carries real commit traffic —
     a commit-free sequence has almost no pmem events to crash — and,
     at N > 1, at least one commit that stripes across shards (so the
     sweep covers the cross-shard seal, not just per-shard commits).
     Under a nonzero window, additionally require at least two
     [Commit_async] and one [Await], so crash points see a standing
     batch AND post-drain acked-durable transactions (mixed
     acked/unacked at crash). *)
  let busy g cmds =
    let count p = Array.fold_left (fun k c -> if p c then k + 1 else k) 0 cmds in
    count (function Lockstep.Commit | Lockstep.Commit_async -> true | _ -> false) >= 2
    && count (function Lockstep.Write _ -> true | _ -> false) >= 3
    && (g.Lockstep.nshards = 1 || Lockstep.multi_shard_commits g cmds >= 1)
    && (g.Lockstep.group_window_ns = 0
       || count (function Lockstep.Commit_async -> true | _ -> false) >= 2
          && count (function Lockstep.Await -> true | _ -> false) >= 1)
  in
  let pass ~label ~window genf shard_counts =
    List.iter
      (fun n ->
        let g = geom ~group_window:window ~scheme n in
        let cmds =
          let rec pick seed =
            if seed > 50 then genf ~seed:1 ~len ~universe:g.Lockstep.universe
            else
              let c = genf ~seed ~len ~universe:g.Lockstep.universe in
              if busy g c then c else pick (seed + 1)
          in
          pick 1
        in
        let progress =
          if quiet then fun _ _ -> ()
          else fun k span ->
            if k mod 50 = 0 || k = span then
              Printf.eprintf "\rlockstep%s crash refinement N=%d: crash point %d/%d%!" label n k
                span
        in
        let r = Lockstep.crash_refine ~cap ~stride ~progress g cmds in
        if not quiet then Printf.eprintf "\r%!";
        Printf.printf
          "lockstep%s: N=%d crash refinement: %d crash points, %d recovered states checked (%d \
           deduped, %.0f subsets in full space, %d capped points, stride %d)\n"
          label n r.Check.crash_points r.Check.states_checked r.Check.states_deduped
          r.Check.subsets_total r.Check.capped_points stride;
        match r.Check.violations with
        | [] -> ()
        | vs ->
            bad := !bad + List.length vs;
            Format.printf "lockstep%s: N=%d crash refinement: %d VIOLATION(S):@." label n
              (List.length vs);
            List.iter (fun v -> Format.printf "  %a@." Check.pp_violation v) vs;
            ignore
              (print_repro
                 ~fails:(fun c ->
                   (Lockstep.crash_refine ~cap ~stride g c).Check.violations <> [])
                 cmds))
      shard_counts
  in
  pass ~label:"" ~window:0 Lockstep.gen [ 1; 2; 4 ];
  (* The group sweep runs at N in {1,2}: N=1 covers the single-shard
     batch pivot, N=2 the batched cross-shard seal; N=4 adds cost but no
     new mechanism (the sync pass already sweeps it).  Logging-only. *)
  (match scheme with
  | Tinca.Config.Logging _ -> pass ~label:" (group)" ~window:awin Lockstep.gen_async [ 1; 2 ]
  | Tinca.Config.Paging _ -> ());
  !bad

(* Self-validation: each planted commit-path mutation must be caught,
   and the shrunk reproducer must stay small (<= 6 commands). *)
let lockstep_selftest ~awin ~quiet ~scheme =
  let bad = ref 0 in
  let check label found fails cmds =
    match found with
    | None ->
        incr bad;
        Printf.printf "self-test: %s NOT caught — the oracle is blind to it\n" label
    | Some detail ->
        Printf.printf "self-test: %s caught (%s)\n" label detail;
        let small = print_repro ~fails cmds in
        if Array.length small > 6 then begin
          incr bad;
          Printf.printf "self-test: %s reproducer has %d commands (> 6): shrinker too weak\n"
            label (Array.length small)
        end
  in
  (* Find a generated sequence the mutated run fails on; nearly any seed
     with a committed write works, but search a few to stay robust. *)
  let find_seq f =
    let rec go seed = if seed > 20 then None else
      let cmds = Lockstep.gen ~seed ~len:30 ~universe:Lockstep.default_geometry.Lockstep.universe in
      match f cmds with Some detail -> Some (detail, cmds) | None -> go (seed + 1)
    in
    go 1
  in
  let plain mutate n =
    let g = geom ~scheme n in
    let probe cmds =
      match Lockstep.run ~mutate g cmds with
      | Error d -> Some (Format.asprintf "%a" Lockstep.pp_divergence d)
      | Ok _ -> None
    in
    let found = find_seq probe in
    check
      (Printf.sprintf "planted %s at N=%d"
         (match mutate with
         | Lockstep.Lose_writes -> "Lose_writes"
         | Lockstep.Abort_commits -> "Abort_commits"
         | Lockstep.Skip_seal -> "Skip_seal"
         | Lockstep.Drop_durable_notify -> "Drop_durable_notify"
         | Lockstep.Torn_swing -> "Torn_swing")
         n)
      (Option.map fst found)
      (fun c -> Result.is_error (Lockstep.run ~mutate g c))
      (match found with Some (_, cmds) -> cmds | None -> [||])
  in
  plain Lockstep.Lose_writes 1;
  plain Lockstep.Abort_commits 2;
  match scheme with
  | Tinca.Config.Paging _ ->
      (* The paging planted fault: a torn 16 B indirection-table swing.
         Invisible without a crash (the second half lands before any
         read); the crash sweep must catch the half-swung entry. *)
      let g = geom ~scheme 1 in
      let crash_fails c =
        (Lockstep.crash_refine ~mutate:Lockstep.Torn_swing ~cap:16 ~stride:1 g c)
          .Check.violations
        <> []
      in
      let probe cmds =
        let r = Lockstep.crash_refine ~mutate:Lockstep.Torn_swing ~cap:16 ~stride:1 g cmds in
        match r.Check.violations with
        | [] -> None
        | v :: _ -> Some (Format.asprintf "crash sweep: %a" Check.pp_violation v)
      in
      let found =
        let rec go seed =
          if seed > 20 then None
          else
            let cmds = Lockstep.gen ~seed ~len:12 ~universe:g.Lockstep.universe in
            match Lockstep.run ~mutate:Lockstep.Torn_swing g cmds with
            | Error _ -> go (seed + 1) (* want the crash sweep, not a plain divergence *)
            | Ok _ -> ( match probe cmds with Some d -> Some (d, cmds) | None -> go (seed + 1))
        in
        go 1
      in
      check "planted Torn_swing at N=1 (crash sweep)" (Option.map fst found) crash_fails
        (match found with Some (_, cmds) -> cmds | None -> [||]);
      ignore quiet;
      ignore awin;
      !bad
  | Tinca.Config.Logging _ ->
  (* Skip_seal is invisible without a crash (the seal only matters to
     recovery): the plain run must stay clean, and the crash-space sweep
     at N=2 must flag the partial multi-shard commit. *)
  let g = geom 2 in
  let crash_fails c =
    (Lockstep.crash_refine ~mutate:Lockstep.Skip_seal ~cap:16 ~stride:1 g c).Check.violations
    <> []
  in
  let probe cmds =
    match Lockstep.run ~mutate:Lockstep.Skip_seal g cmds with
    | Error d ->
        Some (Format.asprintf "unexpectedly visible without a crash: %a" Lockstep.pp_divergence d)
    | Ok _ ->
        let r = Lockstep.crash_refine ~mutate:Lockstep.Skip_seal ~cap:16 ~stride:1 g cmds in
        (match r.Check.violations with
        | [] -> None
        | v :: _ -> Some (Format.asprintf "crash sweep: %a" Check.pp_violation v))
  in
  let found =
    let rec go seed = if seed > 20 then None else
      let cmds = Lockstep.gen ~seed ~len:12 ~universe:g.Lockstep.universe in
      if Lockstep.multi_shard_commits g cmds < 1 then go (seed + 1)
      else
        match Lockstep.run ~mutate:Lockstep.Skip_seal g cmds with
        | Error _ -> go (seed + 1) (* want the crash sweep, not a plain divergence *)
        | Ok _ -> (match probe cmds with Some d -> Some (d, cmds) | None -> go (seed + 1))
    in
    go 1
  in
  check "planted Skip_seal at N=2 (crash sweep)" (Option.map fst found) crash_fails
    (match found with Some (_, cmds) -> cmds | None -> [||]);
  (* Drop_durable_notify publishes a batch but skips its commit point:
     the facade still answers reads from the sealed data and tells
     awaiters they are durable, so the plain async run must stay clean —
     only the crash sweep can flag the lost acked-durable transactions
     (a crash after the drain revokes the whole batch). *)
  let g = geom ~group_window:awin 1 in
  let crash_fails c =
    (Lockstep.crash_refine ~mutate:Lockstep.Drop_durable_notify ~cap:16 ~stride:1 g c)
      .Check.violations
    <> []
  in
  let probe cmds =
    match Lockstep.run ~mutate:Lockstep.Drop_durable_notify g cmds with
    | Error d ->
        Some (Format.asprintf "unexpectedly visible without a crash: %a" Lockstep.pp_divergence d)
    | Ok _ -> (
        let r =
          Lockstep.crash_refine ~mutate:Lockstep.Drop_durable_notify ~cap:16 ~stride:1 g cmds
        in
        match r.Check.violations with
        | [] -> None
        | v :: _ -> Some (Format.asprintf "crash sweep: %a" Check.pp_violation v))
  in
  let found =
    let rec go seed = if seed > 20 then None else
      let cmds = Lockstep.gen_async ~seed ~len:12 ~universe:g.Lockstep.universe in
      match Lockstep.run ~mutate:Lockstep.Drop_durable_notify g cmds with
      | Error _ -> go (seed + 1) (* want the crash sweep, not a plain divergence *)
      | Ok _ -> (match probe cmds with Some d -> Some (d, cmds) | None -> go (seed + 1))
    in
    go 1
  in
  check "planted Drop_durable_notify (group window, crash sweep)" (Option.map fst found)
    crash_fails
    (match found with Some (_, cmds) -> cmds | None -> [||]);
  ignore quiet;
  !bad

let run_lockstep seeds len cap stride group_window quiet scheme =
  let t0 = Unix.gettimeofday () in
  (* Window for the async passes: wide in simulated time, so batches
     survive between commands and drains come from Await, same-block
     conflicts, ring pressure and the max-batch cap — mixed
     acked/unacked transactions at every crash point. *)
  let awin = if group_window > 0 then group_window else 1_000_000 in
  let bad =
    lockstep_equiv ~seeds ~len ~awin ~quiet ~scheme
    + lockstep_crash ~len:(min len 14) ~cap ~stride ~awin ~quiet ~scheme
    + lockstep_selftest ~awin ~quiet ~scheme
  in
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  if bad = 0 then begin
    Printf.printf
      "lockstep (%s): refinement holds at N in {1,2,4} and every planted mutation was caught.\n"
      (Tinca.Config.scheme_name scheme);
    0
  end
  else begin
    Printf.printf "lockstep: %d FAILURE(S).\n" bad;
    1
  end

(* --- flight-recorder mode ------------------------------------------------ *)

(* Crash sweep with the recorder ON (recovery-semantics pin + dossier
   agreement at every explored state), then the planted-fault scenario:
   the dossier alone must convict the acked tickets Drop_durable_notify
   killed. *)
let run_flight commits seed universe shards from stride quiet =
  let t0 = Unix.gettimeofday () in
  let cfg =
    {
      FCheck.default_config with
      FCheck.ncommits = commits;
      seed;
      universe;
      nshards = shards;
      first_event = from;
      stride;
    }
  in
  let progress =
    if quiet then fun _ _ -> ()
    else fun k span ->
      if k mod 20 = 0 || k = span then Printf.eprintf "\rflight crash point %d/%d%!" k span
  in
  let report =
    try FCheck.sweep ~progress cfg
    with Invalid_argument msg ->
      Printf.eprintf "tinca_check --flight: %s\n" msg;
      exit 2
  in
  if not quiet then Printf.eprintf "\r%!";
  Tinca_util.Tabular.print (FCheck.report_table report);
  let bad = ref (List.length report.FCheck.violations) in
  List.iter (fun m -> Printf.printf "  %s\n" m) report.FCheck.violations;
  (match FCheck.drop_notify_scenario cfg with
  | Ok dossier ->
      Printf.printf
        "drop-notify scenario: dossier convicted every acked ticket of the dead batch.\n";
      if not quiet then print_string (Forensics.render dossier)
  | Error msg ->
      incr bad;
      Printf.printf "drop-notify scenario: FAILED — %s\n" msg);
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  if !bad = 0 then begin
    Printf.printf
      "flight: recorder is a pure observer (replay on/off states identical) and the dossier \
       agrees with the judge at every explored crash state.\n";
    0
  end
  else begin
    Printf.printf "flight: %d FAILURE(S).\n" !bad;
    1
  end

let run psan lockstep flight commits seed universe ring_slots pmem_kb cap sample_seed from stride
    shards lockstep_seeds lockstep_len group_window scheme_str verbose quiet =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  (* One funnel for the scheme choice: parse + validate the combination
     through Config.of_args so every mode rejects the same combos the
     facade would. *)
  let scheme =
    match Tinca.Config.of_args ~scheme:scheme_str ~shards () with
    | Ok c -> Tinca.Config.effective_scheme c
    | Error m ->
        Printf.eprintf "tinca_check: %s\n" m;
        exit 2
  in
  if psan then run_psan commits seed universe shards group_window scheme_str
  else if lockstep then
    run_lockstep lockstep_seeds lockstep_len cap stride group_window quiet scheme
  else if flight then run_flight commits seed universe shards from stride quiet
  else
  let cfg =
    {
      Check.ncommits = commits;
      seed;
      universe;
      ring_slots;
      pmem_bytes = pmem_kb * 1024;
      mask_cap = cap;
      sample_seed;
      first_event = from;
      stride;
      nshards = shards;
      scheme;
    }
  in
  let progress =
    if quiet then fun _ _ -> ()
    else fun k span ->
      if k mod 50 = 0 || k = span then Printf.eprintf "\rcrash point %d/%d%!" k span
  in
  let t0 = Unix.gettimeofday () in
  let report =
    try Check.explore ~progress cfg
    with Invalid_argument msg ->
      (* Misconfiguration (bad --from/--stride, NVM too small for the
         ring, ...) — report it as a usage error, not a crash. *)
      Printf.eprintf "tinca_check: %s\n" msg;
      exit 2
  in
  if not quiet then Printf.eprintf "\r%!";
  Tinca_util.Tabular.print (Check.report_table report);
  if report.Check.capped_points > 0 then
    Printf.printf
      "note: %d of %d crash points exceeded the %d-subset cap; those were explored by seeded \
       sample (always including the all-lost and all-survive corners).  Raise --cap for full \
       coverage.\n"
      report.Check.capped_points report.Check.crash_points cap
  else
    Printf.printf "coverage: exhaustive — every survival subset of every crash point explored.\n";
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  match report.Check.violations with
  | [] -> 0
  | vs ->
      Printf.printf "\n%d VIOLATION(S):\n" (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Check.pp_violation v) vs;
      1

let cmd =
  let doc =
    "Exhaustively model-check the Tinca commit protocol's crash space: every pmem event of a \
     deterministic workload is taken as a crash point, and at each one every survival subset \
     of the torn (dirtied-but-unfenced) cache lines is recovered and audited."
  in
  let commits =
    Arg.(value & opt int 6 & info [ "commits" ] ~docv:"N" ~doc:"Transactions in the workload.")
  in
  let seed =
    Arg.(value & opt int Check.default_config.Check.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Workload RNG seed.")
  in
  let universe =
    Arg.(value & opt int Check.default_config.Check.universe
         & info [ "universe" ] ~docv:"N" ~doc:"Disk blocks the workload touches.")
  in
  let ring_slots =
    Arg.(value & opt int Check.default_config.Check.ring_slots
         & info [ "ring-slots" ] ~docv:"N" ~doc:"Ring buffer slots.")
  in
  let pmem_kb =
    Arg.(value & opt int (Check.default_config.Check.pmem_bytes / 1024)
         & info [ "pmem-kb" ] ~docv:"KB" ~doc:"NVM size in KiB (small forces evictions).")
  in
  let cap =
    Arg.(value & opt int Check.default_config.Check.mask_cap
         & info [ "cap" ] ~docv:"N"
             ~doc:"Max survival subsets per crash point before falling back to seeded sampling.")
  in
  let sample_seed =
    Arg.(value & opt int Check.default_config.Check.sample_seed
         & info [ "sample-seed" ] ~docv:"SEED" ~doc:"Seed for the capped-sampling fallback.")
  in
  let from =
    Arg.(value & opt int 1
         & info [ "from" ] ~docv:"K" ~doc:"First crash point (1-based), for sub-range sweeps.")
  in
  let stride =
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"S" ~doc:"Explore every S-th crash point.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:
               "Partition the NVM device into N shards: the sweep (and --psan) then covers the \
                striped commit scheduler — multi-shard transactions, per-shard Head advances and \
                the cross-shard seal.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log per-crash-point detail.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress line on stderr.") in
  let psan =
    Arg.(value & flag
         & info [ "psan" ]
             ~doc:
               "Persistence-sanitizer mode: instead of the crash-space sweep, run the Tinca, \
                Classic (JBD2 + Flashcache) and raw-Flashcache stacks with the always-on \
                flush/fence sanitizer attached and report ordering violations plus redundant \
                flushes per call site.  Honours --commits, --seed and --universe; the \
                sweep-specific flags are ignored.")
  in
  let lockstep =
    Arg.(value & flag
         & info [ "lockstep" ]
             ~doc:
               "Refinement mode: drive the executable journal spec and a real Tinca through \
                generated command sequences in lockstep at 1, 2 and 4 shards, checking \
                observational equivalence after every command; then judge every crash-recovered \
                state by spec refinement ($(b,--cap)/$(b,--stride) budget the sweep); then \
                self-validate by planting commit-path mutations that must be caught.  Failing \
                sequences are auto-shrunk to minimal replayable reproducers.  Honours \
                $(b,--lockstep-seeds), $(b,--lockstep-len), $(b,--cap), $(b,--stride) and \
                $(b,-q); the other sweep flags are ignored.")
  in
  let flight =
    Arg.(value & flag
         & info [ "flight" ]
             ~doc:
               "Flight-recorder mode (ISSUE 9): crash-sweep a group-commit workload with the \
                NVM flight recorder enabled, checking at every explored post-crash state that \
                (a) recovery with flight replay on and off yields bit-identical logical cache \
                state (the recorder is a pure observer) and (b) the forensic dossier's verdict \
                agrees with an acked-durability oracle; then plant the Drop_durable_notify \
                committer fault and require the dossier alone to name the acked tickets that \
                died.  Honours --commits, --seed, --universe, --shards, --from, --stride and -q.")
  in
  let lockstep_seeds =
    Arg.(value & opt int 5
         & info [ "lockstep-seeds" ] ~docv:"N"
             ~doc:"Generated sequences per shard count in --lockstep mode.")
  in
  let lockstep_len =
    Arg.(value & opt int 120
         & info [ "lockstep-len" ] ~docv:"N"
             ~doc:
               "Commands per generated sequence in --lockstep mode (the crash-refinement stage \
                uses a shorter prefix budget of at most 14).")
  in
  let group_window =
    Arg.(value & opt int 0
         & info [ "group-window" ] ~docv:"NS"
             ~doc:
               "Async group-commit window in simulated nanoseconds (ISSUE 8).  Under --psan, a \
                nonzero value adds a Tinca phase driving $(b,commit_async)/$(b,await) with the \
                sanitizer acknowledgement scope ending at the durable (await) point.  Under \
                --lockstep it overrides the window of the async (group) passes, which otherwise \
                default to 1000000 ns.")
  in
  let scheme =
    Arg.(value & opt string "logging"
         & info [ "scheme" ] ~docv:"SCHEME"
             ~doc:
               "Commit scheme under test (ISSUE 10): $(b,logging) (the ring pipeline), \
                $(b,per-block) (logging with per-block fences) or $(b,paging) (COW page \
                remapping through a persistent indirection table).  Honoured by the crash-space \
                sweep, --psan and --lockstep; --flight is a group-commit scenario and stays on \
                the logging scheme.")
  in
  let info = Cmd.info "tinca_check" ~doc in
  Cmd.v info
    Term.(
      const run $ psan $ lockstep $ flight $ commits $ seed $ universe $ ring_slots $ pmem_kb
      $ cap $ sample_seed $ from $ stride $ shards $ lockstep_seeds $ lockstep_len $ group_window
      $ scheme $ verbose $ quiet)

let () = exit (Cmd.eval' cmd)
