(* Crash-consistency checker CLI.

   tinca_check                     - full sweep: every crash point of the
                                     default 6-commit workload, every
                                     survival subset of the torn lines
   tinca_check --commits 3 --cap 64  - quicker budgeted run
   tinca_check --psan              - persistence-sanitizer mode: run the
                                     Tinca, Classic (JBD2 + Flashcache)
                                     and raw-Flashcache stacks with the
                                     flush/fence sanitizer attached

   Exit status 0 when every explored post-crash state recovers to a
   consistent prefix of the commit history (or, under --psan, when no
   ordering violation is flagged); 1 when any violation is found (each
   is printed). *)

open Cmdliner
module Check = Tinca_checker.Crash_check
module Psan = Tinca_checker.Psan
module Stacks = Tinca_stacks.Stacks
module Backend = Tinca_fs.Backend
module Pmem = Tinca_pmem.Pmem
module Rng = Tinca_util.Rng

(* --- persistence-sanitizer mode ----------------------------------------- *)

(* Random commit/read mix through a stack's backend; [commit_blocks] is
   already bracketed with the sanitizer's transaction scope by
   [Stacks.instrument]. *)
let psan_workload ~commits ~universe ~seed (stack : Stacks.t) =
  let rng = Rng.create seed in
  for _ = 1 to commits do
    let n = 1 + Rng.int rng 4 in
    let blocks =
      List.init n (fun _ ->
          (Rng.int rng universe, Bytes.make 4096 (Char.chr (Rng.int rng 256))))
    in
    stack.Stacks.backend.Backend.commit_blocks blocks;
    if Rng.chance rng 0.3 then
      ignore (stack.Stacks.backend.Backend.read_block (Rng.int rng universe))
  done

let psan_summary label psan =
  let r = Psan.report psan in
  Printf.printf "\n== %s ==\n" label;
  Tinca_util.Tabular.print (Psan.report_table r);
  List.iter (fun v -> Format.printf "  %a@." Psan.pp_violation v) r.Psan.violations;
  Psan.violation_count psan

let run_psan commits seed universe shards =
  let nbad = ref 0 in
  (* Tinca: full region classification (layout-aware rules active, one
     layout per shard), including a crash + recovery + second workload
     phase. *)
  let env = Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:universe () in
  let config = { Tinca.Config.default with Tinca.Config.ring_slots = 256; nshards = shards } in
  let stack, psan = Stacks.instrument (Stacks.tinca ~config env) in
  psan_workload ~commits ~universe ~seed stack;
  Pmem.crash ~seed:(seed + 1) env.Stacks.pmem;
  (* The sanitizer stays attached across the crash (its shadow resets on
     the Crash event) and audits recovery's revocation writes too. *)
  let recovered = Stacks.tinca_recover env in
  let recommit blocks =
    Psan.txn_begin psan;
    match recovered.Stacks.backend.Backend.commit_blocks blocks with
    | () -> Psan.txn_end psan
    | exception e ->
        Psan.txn_abort psan;
        raise e
  in
  psan_workload ~commits:(max 1 (commits / 4)) ~universe ~seed:(seed + 2)
    { recovered with
      Stacks.backend = { recovered.Stacks.backend with Backend.commit_blocks = recommit } };
  nbad :=
    !nbad
    + psan_summary
        (Printf.sprintf "Tinca (commit workload + crash recovery, %d shard%s)" shards
           (if shards = 1 then "" else "s"))
        psan;
  Psan.detach psan;
  (* Classic: JBD2 journal over Flashcache.  No Tinca layout, so the
     unfenced-ack and redundant-flush rules carry the audit. *)
  let journal_len = 64 in
  let env =
    Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:(universe + journal_len) ()
  in
  let stack, psan = Stacks.instrument (Stacks.classic ~journal_len env) in
  psan_workload ~commits ~universe ~seed stack;
  stack.Stacks.backend.Backend.sync ();
  nbad := !nbad + psan_summary "Classic (JBD2 + Flashcache)" psan;
  Psan.detach psan;
  (* Raw Flashcache (no journal above it). *)
  let env = Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:universe () in
  let stack, psan = Stacks.instrument (Stacks.nojournal env) in
  psan_workload ~commits ~universe ~seed stack;
  stack.Stacks.backend.Backend.sync ();
  nbad := !nbad + psan_summary "Flashcache (no journal)" psan;
  Psan.detach psan;
  if !nbad = 0 then begin
    Printf.printf "\npsan: no persistence-ordering violations across the three stacks.\n";
    0
  end
  else begin
    Printf.printf "\npsan: %d VIOLATION(S).\n" !nbad;
    1
  end

let run psan commits seed universe ring_slots pmem_kb cap sample_seed from stride shards verbose
    quiet =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  if psan then run_psan commits seed universe shards
  else
  let cfg =
    {
      Check.ncommits = commits;
      seed;
      universe;
      ring_slots;
      pmem_bytes = pmem_kb * 1024;
      mask_cap = cap;
      sample_seed;
      first_event = from;
      stride;
      nshards = shards;
    }
  in
  let progress =
    if quiet then fun _ _ -> ()
    else fun k span ->
      if k mod 50 = 0 || k = span then Printf.eprintf "\rcrash point %d/%d%!" k span
  in
  let t0 = Unix.gettimeofday () in
  let report =
    try Check.explore ~progress cfg
    with Invalid_argument msg ->
      (* Misconfiguration (bad --from/--stride, NVM too small for the
         ring, ...) — report it as a usage error, not a crash. *)
      Printf.eprintf "tinca_check: %s\n" msg;
      exit 2
  in
  if not quiet then Printf.eprintf "\r%!";
  Tinca_util.Tabular.print (Check.report_table report);
  if report.Check.capped_points > 0 then
    Printf.printf
      "note: %d of %d crash points exceeded the %d-subset cap; those were explored by seeded \
       sample (always including the all-lost and all-survive corners).  Raise --cap for full \
       coverage.\n"
      report.Check.capped_points report.Check.crash_points cap
  else
    Printf.printf "coverage: exhaustive — every survival subset of every crash point explored.\n";
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  match report.Check.violations with
  | [] -> 0
  | vs ->
      Printf.printf "\n%d VIOLATION(S):\n" (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Check.pp_violation v) vs;
      1

let cmd =
  let doc =
    "Exhaustively model-check the Tinca commit protocol's crash space: every pmem event of a \
     deterministic workload is taken as a crash point, and at each one every survival subset \
     of the torn (dirtied-but-unfenced) cache lines is recovered and audited."
  in
  let commits =
    Arg.(value & opt int 6 & info [ "commits" ] ~docv:"N" ~doc:"Transactions in the workload.")
  in
  let seed =
    Arg.(value & opt int Check.default_config.Check.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Workload RNG seed.")
  in
  let universe =
    Arg.(value & opt int Check.default_config.Check.universe
         & info [ "universe" ] ~docv:"N" ~doc:"Disk blocks the workload touches.")
  in
  let ring_slots =
    Arg.(value & opt int Check.default_config.Check.ring_slots
         & info [ "ring-slots" ] ~docv:"N" ~doc:"Ring buffer slots.")
  in
  let pmem_kb =
    Arg.(value & opt int (Check.default_config.Check.pmem_bytes / 1024)
         & info [ "pmem-kb" ] ~docv:"KB" ~doc:"NVM size in KiB (small forces evictions).")
  in
  let cap =
    Arg.(value & opt int Check.default_config.Check.mask_cap
         & info [ "cap" ] ~docv:"N"
             ~doc:"Max survival subsets per crash point before falling back to seeded sampling.")
  in
  let sample_seed =
    Arg.(value & opt int Check.default_config.Check.sample_seed
         & info [ "sample-seed" ] ~docv:"SEED" ~doc:"Seed for the capped-sampling fallback.")
  in
  let from =
    Arg.(value & opt int 1
         & info [ "from" ] ~docv:"K" ~doc:"First crash point (1-based), for sub-range sweeps.")
  in
  let stride =
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"S" ~doc:"Explore every S-th crash point.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:
               "Partition the NVM device into N shards: the sweep (and --psan) then covers the \
                striped commit scheduler — multi-shard transactions, per-shard Head advances and \
                the cross-shard seal.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log per-crash-point detail.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress line on stderr.") in
  let psan =
    Arg.(value & flag
         & info [ "psan" ]
             ~doc:
               "Persistence-sanitizer mode: instead of the crash-space sweep, run the Tinca, \
                Classic (JBD2 + Flashcache) and raw-Flashcache stacks with the always-on \
                flush/fence sanitizer attached and report ordering violations plus redundant \
                flushes per call site.  Honours --commits, --seed and --universe; the \
                sweep-specific flags are ignored.")
  in
  let info = Cmd.info "tinca_check" ~doc in
  Cmd.v info
    Term.(
      const run $ psan $ commits $ seed $ universe $ ring_slots $ pmem_kb $ cap $ sample_seed
      $ from $ stride $ shards $ verbose $ quiet)

let () = exit (Cmd.eval' cmd)
