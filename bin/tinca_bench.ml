(* CLI driver for the reproduction experiments.

   tinca_bench list           - show every experiment id
   tinca_bench run <id> ...   - run one or more experiments
   tinca_bench run all        - run everything *)

open Cmdliner
module Registry = Tinca_harness.Registry

let list_cmd =
  let doc = "List all experiments (paper tables and figures)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-20s %-50s [%s]\n" e.Registry.id e.Registry.title e.Registry.paper_ref)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_ids csv_dir ids =
  let targets =
    if List.mem "all" ids then Registry.all
    else
      List.map
        (fun id ->
          match Registry.find id with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment %S; try `tinca_bench list`\n" id;
              exit 1)
        ids
  in
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      (match csv_dir with
      | None -> print_string (Registry.run_experiment e)
      | Some dir ->
          Printf.printf "=== %s: %s ===\n" e.Registry.id e.Registry.title;
          List.iteri
            (fun i table ->
              let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" e.Registry.id i) in
              let oc = open_out path in
              output_string oc (Tinca_harness.Registry.csv_of table);
              close_out oc;
              Printf.printf "  wrote %s\n" path)
            (e.Registry.run ()));
      Printf.printf "(wall time %.1fs)\n\n%!" (Unix.gettimeofday () -. t0))
    targets

let run_cmd =
  let doc = "Run experiments by id (or `all`)." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Write each table as a CSV file into $(docv) instead of printing it.")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ csv $ ids)

(* Shared --shards/--scheme plumbing: only the tinca stack is sharded or
   scheme-selectable; asking for either on any other stack is a usage
   error, not something to ignore.  The tinca config is built through
   the one Config.of_args funnel (ISSUE 10 satellite), so every
   subcommand accepts and validates the same flags the same way. *)
let stack_with_shards ?(flight_slots = 0) ?(scheme = "logging") ~stack_name ~shards env =
  let module Stacks = Tinca_stacks.Stacks in
  if shards < 1 then begin
    Printf.eprintf "--shards must be >= 1\n";
    exit 1
  end;
  if shards > 1 && stack_name <> "tinca" then begin
    Printf.eprintf "--shards %d: only the tinca stack is sharded\n" shards;
    exit 1
  end;
  if flight_slots > 0 && stack_name <> "tinca" then begin
    Printf.eprintf "--flight-slots %d: only the tinca stack has a flight recorder\n" flight_slots;
    exit 1
  end;
  if scheme <> "logging" && stack_name <> "tinca" then begin
    Printf.eprintf "--scheme %s: only the tinca stack has selectable commit schemes\n" scheme;
    exit 1
  end;
  match stack_name with
  | "tinca" -> (
      match Tinca.Config.of_args ~scheme ~shards ~flight_slots () with
      | Ok config -> Stacks.tinca ~config env
      | Error m ->
          Printf.eprintf "tinca_bench: %s\n" m;
          exit 1)
  | "classic" -> Stacks.classic ~journal_len:4096 env
  | "ubj" -> Stacks.ubj env
  | "nojournal" -> Stacks.nojournal env
  | other ->
      Printf.eprintf "unknown stack %S (tinca|classic|ubj|nojournal)\n" other;
      exit 1

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Shard count for the tinca stack (per-shard rings + striped commit scheduler).")

let scheme_arg =
  Arg.(value & opt string "logging"
       & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:
             "Commit scheme for the tinca stack (ISSUE 10): $(b,logging) (ring pipeline), \
              $(b,per-block) (logging with per-block fences) or $(b,paging) (COW page remapping \
              through a persistent indirection table).")

(* `trace` subcommand: replay a block trace (from a file, or synthesized)
   over a chosen stack and report the evaluation metrics. *)
let run_trace stack_name shards scheme trace_file synth_ops read_pct tech flush_instr trace_out
    verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let module Stacks = Tinca_stacks.Stacks in
  let module Fs = Tinca_fs.Fs in
  let module Trace = Tinca_workloads.Trace in
  let module Ops = Tinca_workloads.Ops in
  let open Tinca_sim in
  if trace_out <> None then Tinca_obs.Trace.enable ();
  let trace =
    match trace_file with
    | Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        Trace.parse text
    | None ->
        Trace.synthesize ~seed:7 ~nblocks:4096 ~ops:synth_ops ~read_pct ~zipf_theta:0.9
          ~fsync_every:8
  in
  let env = Stacks.make_env ~tech ~flush_instr ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:65536 () in
  let stack = stack_with_shards ~scheme ~stack_name ~shards env in
  let fs =
    Fs.format
      ~config:{ Fs.default_config with journaled = stack_name <> "nojournal" }
      stack.Stacks.backend
  in
  let ops = Ops.of_fs ~compute:(Clock.advance env.Stacks.clock) fs in
  Trace.prealloc ~block_size:4096 trace ops;
  Fs.fsync fs;
  let t0 = Clock.now_ns env.Stacks.clock in
  let snap = Metrics.snapshot env.Stacks.metrics in
  let stats = Trace.run ~block_size:4096 trace ops in
  let seconds = (Clock.now_ns env.Stacks.clock -. t0) /. 1e9 in
  let per_op name =
    float_of_int (Metrics.since env.Stacks.metrics snap name) /. float_of_int stats.Ops.ops
  in
  Printf.printf "stack=%s ops=%d sim_seconds=%.4f\n" stack.Stacks.label stats.Ops.ops seconds;
  Printf.printf "throughput        %10.0f ops/s\n" (float_of_int stats.Ops.ops /. seconds);
  Printf.printf "clflush/op        %10.1f\n" (per_op "pmem.clflush");
  Printf.printf "disk writes/op    %10.2f\n" (per_op "disk.writes");
  Printf.printf "disk reads/op     %10.2f\n" (per_op "disk.reads");
  Printf.printf "cache write hit   %10.1f%%\n" (100.0 *. stack.Stacks.cache_write_hit_rate ());
  match trace_out with
  | None -> ()
  | Some path ->
      Tinca_obs.Trace.export_to_file path;
      Printf.printf "\n%s\n" (Tinca_obs.Trace.flame ());
      Printf.printf "wrote %s (open in chrome://tracing or ui.perfetto.dev)\n" path;
      Tinca_obs.Trace.disable ()

let trace_cmd =
  let doc = "Replay a block trace (R/W/F text format) over a stack." in
  let stack =
    Arg.(value & opt string "tinca" & info [ "stack" ] ~docv:"STACK"
           ~doc:"Stack to drive: tinca, classic, ubj or nojournal.")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file" ] ~docv:"TRACE"
           ~doc:"Trace file to replay (default: synthesize one).")
  in
  let ops =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"N" ~doc:"Synthesized trace length.")
  in
  let read_pct =
    Arg.(value & opt float 0.5 & info [ "read-pct" ] ~docv:"P"
           ~doc:"Synthesized read fraction in [0,1].")
  in
  let tech =
    let module Latency = Tinca_sim.Latency in
    Arg.(value
         & opt
             (enum
                [ ("pcm", Latency.Pcm); ("nvdimm", Latency.Nvdimm); ("stt-ram", Latency.Stt_ram);
                  ("reram", Latency.Reram) ])
             Latency.Pcm
         & info [ "tech" ] ~docv:"TECH"
             ~doc:"NVM technology latency model: pcm, nvdimm, stt-ram or reram.")
  in
  let flush_instr =
    let module Latency = Tinca_sim.Latency in
    Arg.(value
         & opt
             (enum
                [ ("clflush", Latency.Clflush); ("clflushopt", Latency.Clflushopt);
                  ("clwb", Latency.Clwb) ])
             Latency.Clflush
         & info [ "flush-instr" ] ~docv:"INSTR"
             ~doc:"Cache-line flush instruction: clflush (serializing), clflushopt or clwb \
                   (pipelined write-back).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record a transaction-lifecycle span trace of the replay and write it as Chrome \
                 trace_event JSON to $(docv).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log recovery/commit activity.") in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run_trace $ stack $ shards_arg $ scheme_arg $ file $ ops $ read_pct $ tech
      $ flush_instr $ trace_out $ verbose)

(* `bench-json` subcommand: emit the commit-protocol micro-benchmark and
   trace-replay throughput as a machine-readable artifact for CI. *)
let bench_json_cmd =
  let doc = "Write the commit-protocol benchmark results as JSON (CI artifact)." in
  let out =
    Arg.(value & opt string "BENCH_commit.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the JSON document.")
  in
  let run out =
    let t0 = Unix.gettimeofday () in
    let json =
      Tinca_harness.Exp_commit.bench_json
        ~group_block:Tinca_harness.Exp_group.json_block
        ~page_block:Tinca_harness.Exp_page.json_block ()
    in
    let oc = open_out out in
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s (wall time %.1fs)\n" out (Unix.gettimeofday () -. t0)
  in
  Cmd.v (Cmd.info "bench-json" ~doc) Term.(const run $ out)

(* `stats` subcommand: run a synthetic workload over a psan-instrumented
   stack and print the /proc/tinca-style health snapshot. *)
let run_stats stack_name shards scheme flight_slots synth_ops read_pct =
  let module Stacks = Tinca_stacks.Stacks in
  let module Fs = Tinca_fs.Fs in
  let module Workload = Tinca_workloads.Trace in
  let module Ops = Tinca_workloads.Ops in
  let module Psan = Tinca_checker.Psan in
  let module Procfs = Tinca_obs.Procfs in
  let open Tinca_sim in
  let env = Stacks.make_env ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:65536 () in
  let stack, psan =
    Stacks.instrument (stack_with_shards ~flight_slots ~scheme ~stack_name ~shards env)
  in
  let fs =
    Fs.format
      ~config:{ Fs.default_config with journaled = stack_name <> "nojournal" }
      stack.Stacks.backend
  in
  let trace =
    Workload.synthesize ~seed:7 ~nblocks:4096 ~ops:synth_ops ~read_pct ~zipf_theta:0.9
      ~fsync_every:8
  in
  let ops =
    Tinca_harness.Runner.instrument_ops ~clock:env.Stacks.clock ~metrics:env.Stacks.metrics
      (Ops.of_fs ~compute:(Clock.advance env.Stacks.clock) fs)
  in
  Workload.prealloc ~block_size:4096 trace ops;
  Fs.fsync fs;
  ignore (Workload.run ~block_size:4096 trace ops);
  Fs.fsync fs;
  let r = Psan.report psan in
  let sections =
    [
      Procfs.section "cache" (stack.Stacks.proc_stats ());
      Procfs.section "psan"
        ([
           ("events", string_of_int r.Psan.events);
           ("stores", string_of_int r.Psan.stores);
           ("flush_calls", string_of_int r.Psan.flush_calls);
           ("line_flushes", string_of_int r.Psan.line_flushes);
           ("fences", string_of_int r.Psan.fences);
           ("violations", string_of_int (List.length r.Psan.violations));
           ("redundant_flushes", string_of_int r.Psan.redundant_flushes);
         ]
        @ List.map
            (fun (site, n) -> ("redundant." ^ site, string_of_int n))
            r.Psan.redundant_by_site);
      Procfs.section "latency"
        (List.map (fun (name, h) -> (name, Hist.to_string h)) (Metrics.hists env.Stacks.metrics));
      Procfs.section "counters"
        (List.map (fun (k, v) -> (k, string_of_int v)) (Metrics.to_list env.Stacks.metrics));
    ]
  in
  print_string (Procfs.render sections)

let stats_cmd =
  let doc = "Print a /proc/tinca-style stats snapshot after a synthetic workload." in
  let stack =
    Arg.(value & opt string "tinca" & info [ "stack" ] ~docv:"STACK"
           ~doc:"Stack to snapshot: tinca, classic, ubj or nojournal.")
  in
  let ops =
    Arg.(value & opt int 4_000 & info [ "ops" ] ~docv:"N" ~doc:"Synthesized trace length.")
  in
  let read_pct =
    Arg.(value & opt float 0.5 & info [ "read-pct" ] ~docv:"P"
           ~doc:"Synthesized read fraction in [0,1].")
  in
  let flight =
    Arg.(value & opt int 0 & info [ "flight-slots" ] ~docv:"N"
           ~doc:"Flight-recorder ring slots per shard for the tinca stack (0 = recorder off); \
                 the recorder's own media writes show up as the wear.*.flight rows.")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run_stats $ stack $ shards_arg $ scheme_arg $ flight $ ops $ read_pct)

(* `fio` subcommand: the Fig 7 Fio micro-benchmark on one stack, with a
   configurable shard count for the tinca stack. *)
let run_fio stack_name shards scheme ops read_pct =
  let module Stacks = Tinca_stacks.Stacks in
  let module Fio = Tinca_workloads.Fio in
  let module Runner = Tinca_harness.Runner in
  let cfg =
    { Fio.default with Fio.file_size = 20 * 1024 * 1024; read_pct; ops; fsync_every = 32 }
  in
  let m =
    Runner.run_local
      ~nvm_bytes:(8 * 1024 * 1024)
      ~spec:(fun env -> stack_with_shards ~scheme ~stack_name ~shards env)
      ~prealloc:(Fio.prealloc cfg) ~work:(Fio.run cfg) ()
  in
  let cl, dw, iops = Runner.per_write m in
  Printf.printf "stack=%s shards=%d ops=%d read_pct=%.2f sim_seconds=%.4f\n" m.Runner.label shards
    m.Runner.ops read_pct m.Runner.sim_seconds;
  Printf.printf "write IOPS        %10.0f\n" iops;
  Printf.printf "clflush/write     %10.1f\n" cl;
  Printf.printf "disk writes/write %10.2f\n" dw;
  Printf.printf "cache write hit   %10.1f%%\n" (100.0 *. m.Runner.write_hit_rate);
  if stack_name = "tinca" && shards > 1 then
    List.iter
      (fun (k, v) ->
        if
          List.mem k [ "nshards"; "multi_shard_commits"; "cross_shard_seals"; "ring_high_water_max" ]
        then Printf.printf "%-17s %10s\n" k v)
      (m.Runner.stack.Stacks.proc_stats ())

let fio_cmd =
  let doc = "Run the Fio micro-benchmark (Fig 7's workload) on one stack." in
  let stack =
    Arg.(value & opt string "tinca" & info [ "stack" ] ~docv:"STACK"
           ~doc:"Stack to drive: tinca, classic, ubj or nojournal.")
  in
  let ops = Arg.(value & opt int 8_000 & info [ "ops" ] ~docv:"N" ~doc:"Fio operations to issue.") in
  let read_pct =
    Arg.(value & opt float 0.5 & info [ "read-pct" ] ~docv:"P" ~doc:"Read fraction in [0,1].")
  in
  Cmd.v (Cmd.info "fio" ~doc)
    Term.(const run_fio $ stack $ shards_arg $ scheme_arg $ ops $ read_pct)

(* `check-shard` subcommand: the sharding CI gate — the N=1 equivalence
   pin against BENCH_commit.json plus the scaling sanity check. *)
let run_check_shard json_path =
  let module Exp_shard = Tinca_harness.Exp_shard in
  let module Tabular = Tinca_util.Tabular in
  if not (Sys.file_exists json_path) then begin
    Printf.eprintf "check-shard: %s not found (run `tinca_bench bench-json` first)\n" json_path;
    exit 1
  end;
  let tables, pin_ok, scaling_ok = Exp_shard.check ~json_path in
  List.iter (fun t -> print_string (Tabular.render t); print_newline ()) tables;
  Printf.printf "%-50s %s\n" "N=1 equivalence pin vs single-ring artifact"
    (if pin_ok then "ok" else "FAIL");
  Printf.printf "%-50s %s\n" "scaling sanity (N=4 makespan < N=1)"
    (if scaling_ok then "ok" else "FAIL");
  if not (pin_ok && scaling_ok) then begin
    Printf.printf "check-shard: FAILED\n";
    exit 1
  end;
  Printf.printf "check-shard: all checks passed\n"

let check_shard_cmd =
  let doc = "Validate the sharding layer (N=1 equivalence pin + scaling sanity)." in
  let json =
    Arg.(value & opt string "BENCH_commit.json"
         & info [ "json" ] ~docv:"FILE" ~doc:"Single-ring commit-point artifact to pin against.")
  in
  Cmd.v (Cmd.info "check-shard" ~doc) Term.(const run_check_shard $ json)

(* `check-group` subcommand: the async group-commit CI gate (ISSUE 8) —
   window=0 media/cost equivalence with the synchronous pipeline,
   sfences/commit < 1 at >= 8 streams, p99 ack latency bounded by the
   window. *)
let run_check_group window streams =
  let module Exp_group = Tinca_harness.Exp_group in
  let module Tabular = Tinca_util.Tabular in
  if window <= 0 then begin
    Printf.eprintf "check-group: --group-window must be > 0\n";
    exit 1
  end;
  (if streams > 0 then
     let s = Exp_group.run_point ~streams ~window in
     Printf.printf
       "streams=%d window=%d ns: %.2f sfences/commit, %d batches (%.1f txns/batch), ack \
        p50/p99 = %.0f/%.0f ns\n\n"
       s.Exp_group.streams s.Exp_group.window_ns s.Exp_group.sfences_per_commit
       s.Exp_group.batches s.Exp_group.txns_per_batch s.Exp_group.ack_p50_ns
       s.Exp_group.ack_p99_ns);
  let tables, ok = Exp_group.check ~window () in
  List.iter
    (fun t ->
      print_string (Tabular.render t);
      print_newline ())
    tables;
  if not ok then begin
    Printf.printf "check-group: FAILED\n";
    exit 1
  end;
  Printf.printf "check-group: all checks passed\n"

let check_group_cmd =
  let doc =
    "Validate the async group-commit path (window=0 equivalence pin, amortized fences, ack \
     latency bound)."
  in
  let window =
    Arg.(value & opt int Tinca_harness.Exp_group.default_window_ns
         & info [ "group-window" ] ~docv:"NS"
             ~doc:"Group-commit window in simulated nanoseconds for the sweep and the gate.")
  in
  let streams =
    Arg.(value & opt int 0
         & info [ "streams" ] ~docv:"K"
             ~doc:
               "Additionally run and print one (K streams, window) point before the gate \
                (0 = sweep only).")
  in
  Cmd.v (Cmd.info "check-group" ~doc) Term.(const run_check_group $ window $ streams)

(* `check-page` subcommand: the commit-scheme ablation CI gate
   (ISSUE 10) — paging's fence budget flat in transaction size, the
   commit_scheme/commit_pipeline shim identity, a budgeted paging
   crash-space sweep and lockstep refinement at N=1/4, psan-clean
   paging workload. *)
let run_check_page () =
  let module Exp_page = Tinca_harness.Exp_page in
  let module Tabular = Tinca_util.Tabular in
  let tables, ok = Exp_page.check () in
  List.iter
    (fun t ->
      print_string (Tabular.render t);
      print_newline ())
    tables;
  if not ok then begin
    Printf.printf "check-page: FAILED\n";
    exit 1
  end;
  Printf.printf "check-page: all checks passed\n"

let check_page_cmd =
  let doc =
    "Validate the commit-scheme ablation (paging fence budget, scheme-config shim identity, \
     budgeted paging crash sweep + lockstep refinement, psan)."
  in
  Cmd.v (Cmd.info "check-page" ~doc) Term.(const run_check_page $ const ())

(* `check-obs` subcommand: CI gate for the observability layer.  Runs a
   traced 8-block-commit workload, validates the exported Chrome JSON
   against the trace_event schema, pins the per-span fence attribution
   to the persistence budget (stage B = 1 sfence, whole commit <= 6),
   checks that tracing does not perturb the simulation (identical
   simulated end time), and bounds the disabled-mode overhead at 2% of
   commit wall time. *)
let run_check_obs out =
  let module Cache = Tinca_core.Cache in
  let module Pmem = Tinca_pmem.Pmem in
  let module Disk = Tinca_blockdev.Disk in
  let module Trace = Tinca_obs.Trace in
  let module Jsonv = Tinca_obs.Jsonv in
  let open Tinca_sim in
  let failures = ref [] in
  let check name ok detail =
    if ok then Printf.printf "ok    %-42s %s\n" name detail
    else begin
      Printf.printf "FAIL  %-42s %s\n" name detail;
      failures := name :: !failures
    end
  in
  let commits = 16 and blocks = 8 in
  (* The test_budget environment: 1 MB device keeps 16 x 8-block commits
     free of evictions, so the budget is the pipeline's own fences. *)
  let run_commits ~traced =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(1024 * 1024) () in
    let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:256 ~block_size:4096 in
    if traced then begin
      Trace.enable ();
      Trace.name_track clock "tinca"
    end;
    let cache =
      Cache.format
        ~config:{ Cache.default_config with ring_slots = 128 }
        ~pmem ~disk ~clock ~metrics
    in
    let payload = Bytes.make 4096 'o' in
    for c = 0 to commits - 1 do
      let h = Cache.Txn.init cache in
      for b = 0 to blocks - 1 do
        Cache.Txn.add h ((c * blocks) + b) payload
      done;
      Cache.Txn.commit h
    done;
    (clock, Clock.now_ns clock)
  in
  (* 1. Simulated time must be identical with and without tracing. *)
  let _, ns_disabled = run_commits ~traced:false in
  let clock, ns_traced = run_commits ~traced:true in
  check "tracing preserves simulated time"
    (ns_traced = ns_disabled)
    (Printf.sprintf "%.0f ns vs %.0f ns" ns_traced ns_disabled);
  (* 2. Per-span fence attribution matches the persistence budget. *)
  let stage_b = Trace.find_spans "tinca.commit.stage_b" in
  check "stage-B spans recorded" (List.length stage_b = commits)
    (Printf.sprintf "%d spans" (List.length stage_b));
  check "stage B pays exactly 1 sfence"
    (stage_b <> [] && List.for_all (fun s -> Trace.counter s "pmem.sfence" = 1) stage_b)
    (String.concat " "
       (List.map (fun s -> string_of_int (Trace.counter s "pmem.sfence")) stage_b));
  let commits_spans = Trace.find_spans "tinca.commit" in
  check "whole commit within 6-sfence budget"
    (commits_spans <> []
    && List.for_all (fun s -> Trace.counter s "pmem.sfence" <= 6) commits_spans)
    (String.concat " "
       (List.map (fun s -> string_of_int (Trace.counter s "pmem.sfence")) commits_spans));
  check "all spans closed, none unbalanced"
    (Trace.open_spans () = 0 && Trace.unbalanced () = 0)
    (Printf.sprintf "open=%d unbalanced=%d" (Trace.open_spans ()) (Trace.unbalanced ()));
  let spans_per_commit =
    float_of_int (List.length (Trace.completed ())) /. float_of_int commits
  in
  (* 3. The export is well-formed Chrome trace JSON. *)
  Trace.export_to_file out;
  (match Jsonv.validate_trace_file out with
  | Ok st ->
      check "exported trace validates" true
        (Printf.sprintf "%s: %d events, %d track(s), depth %d" out st.Jsonv.events
           st.Jsonv.tracks st.Jsonv.max_depth)
  | Error errs ->
      check "exported trace validates" false
        (String.concat "; " (if List.length errs > 3 then [ List.nth errs 0; "..." ] else errs)));
  Trace.disable ();
  (* 4. Disabled-mode overhead gate.  Wall-clock benchmarks are flaky in
     CI, so the gate is derived: (measured cost of a disabled
     begin/end pair) x (pairs a commit executes) must be <= 2% of the
     measured wall time of one untraced commit.  Both sides are medians
     of repeated runs of tight loops, which is as deterministic as
     wall-clock gets. *)
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let pair_cost_ns =
    let iters = 200_000 in
    median
      (List.init 5 (fun _ ->
           let t0 = Unix.gettimeofday () in
           for _ = 1 to iters do
             Trace.begin_span ~clock "x";
             Trace.end_span "x"
           done;
           (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters))
  in
  let commit_wall_ns =
    median
      (List.init 5 (fun _ ->
           let t0 = Unix.gettimeofday () in
           let _, _ = run_commits ~traced:false in
           (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int commits))
  in
  let overhead = pair_cost_ns *. spans_per_commit /. commit_wall_ns in
  check "disabled overhead <= 2% of commit cost"
    (overhead <= 0.02)
    (Printf.sprintf "pair %.1f ns x %.1f spans/commit / %.0f ns/commit = %.3f%%" pair_cost_ns
       spans_per_commit commit_wall_ns (100.0 *. overhead));
  if !failures <> [] then begin
    Printf.printf "check-obs: %d check(s) FAILED\n" (List.length !failures);
    exit 1
  end;
  Printf.printf "check-obs: all checks passed\n"

let check_obs_cmd =
  let doc = "Validate the observability layer (trace export, fence attribution, overhead)." in
  let out =
    Arg.(value & opt string "/tmp/tinca_check_obs.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the validated trace export.")
  in
  Cmd.v (Cmd.info "check-obs" ~doc) Term.(const run_check_obs $ out)

(* `forensics` subcommand: the flight recorder's quick-start story —
   run a group-commit workload with the recorder on, pull the plug
   mid-flight (random cache-line survival), recover, and print the
   post-crash dossier; optionally export its Chrome-trace timeline. *)
let run_forensics shards commits seed crash_frac timeline_out =
  let module Stacks = Tinca_stacks.Stacks in
  let module Pmem = Tinca_pmem.Pmem in
  let module Forensics = Tinca_obs.Forensics in
  let module Rng = Tinca_util.Rng in
  if crash_frac <= 0.0 || crash_frac >= 1.0 then begin
    Printf.eprintf "forensics: --crash-frac must be in (0, 1)\n";
    exit 1
  end;
  let universe = 64 in
  let mk () = Stacks.make_env ~seed ~nvm_bytes:(512 * 1024) ~disk_blocks:universe () in
  let fmt env =
    Tinca.ok_exn
      (Tinca.format
         ~config:
           {
             Tinca.Config.default with
             Tinca.Config.nvm_bytes = Pmem.size env.Stacks.pmem;
             ring_slots = 256;
             nshards = shards;
             flight_slots = 128;
             group_window_ns = 1_000_000_000;
             group_max_batch = 4;
           }
         ~pmem:env.Stacks.pmem ~disk:env.Stacks.disk ~clock:env.Stacks.clock
         ~metrics:env.Stacks.metrics)
  in
  let workload tc =
    let rng = Rng.create seed in
    for _ = 1 to commits do
      let txn = Tinca.init_txn tc in
      for _ = 1 to 1 + Rng.int rng 3 do
        Tinca.ok_exn
          (Tinca.write txn (Rng.int rng universe)
             (Bytes.make 4096 (Char.chr (1 + Rng.int rng 255))))
      done;
      ignore (Tinca.ok_exn (Tinca.commit_async txn))
    done;
    Tinca.group_flush tc
  in
  (* Crash-free span first, so --crash-frac lands proportionally. *)
  let env0 = mk () in
  let tc0 = fmt env0 in
  let before = Pmem.event_count env0.Stacks.pmem in
  workload tc0;
  let span = Pmem.event_count env0.Stacks.pmem - before in
  let crash_at = max 1 (int_of_float (crash_frac *. float_of_int span)) in
  let env = mk () in
  let tc = fmt env in
  Pmem.set_crash_countdown env.Stacks.pmem (Some crash_at);
  (try workload tc with Pmem.Crash_point -> ());
  Pmem.set_crash_countdown env.Stacks.pmem None;
  Pmem.crash ~seed:(seed + 1) env.Stacks.pmem;
  Printf.printf "crashed at pmem event %d of %d (%d commit_async txns issued)\n\n" crash_at span
    commits;
  match
    Tinca.recover ~pmem:env.Stacks.pmem ~disk:env.Stacks.disk ~clock:env.Stacks.clock
      ~metrics:env.Stacks.metrics
  with
  | Error e ->
      Printf.eprintf "forensics: recovery failed: %s\n" (Tinca.error_message e);
      exit 1
  | Ok t2 -> (
      match Tinca.last_crash_report t2 with
      | None -> Printf.printf "no dossier: no flight records survived the crash\n"
      | Some d -> (
          print_string (Forensics.render d);
          match timeline_out with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc d.Forensics.timeline_json;
              close_out oc;
              Printf.printf "\nwrote %s (open in chrome://tracing or ui.perfetto.dev)\n" path))

let forensics_cmd =
  let doc =
    "Crash a recorder-enabled workload mid-flight and print the post-crash forensic dossier \
     (batch ledger, acked-vs-survived verdict, torn records, recovery decisions)."
  in
  let commits =
    Arg.(value & opt int 12 & info [ "commits" ] ~docv:"N" ~doc:"Async transactions to issue.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload RNG seed.") in
  let crash_frac =
    Arg.(value & opt float 0.6
         & info [ "crash-frac" ] ~docv:"F"
             ~doc:"Crash at this fraction of the workload's pmem events, in (0, 1).")
  in
  let timeline =
    Arg.(value & opt (some string) None
         & info [ "timeline" ] ~docv:"FILE"
             ~doc:"Also write the dossier's Chrome trace_event timeline JSON to $(docv).")
  in
  Cmd.v (Cmd.info "forensics" ~doc)
    Term.(const run_forensics $ shards_arg $ commits $ seed $ crash_frac $ timeline)

(* `check-flight` subcommand: the flight-recorder CI gate (ISSUE 9). *)
let run_check_flight () =
  let module Tabular = Tinca_util.Tabular in
  let t0 = Unix.gettimeofday () in
  let tables, errs, ok = Tinca_harness.Exp_flight.check () in
  List.iter
    (fun t ->
      print_string (Tabular.render t);
      print_newline ())
    tables;
  List.iter (fun e -> Printf.printf "  %s\n" e) errs;
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  if not ok then begin
    Printf.printf "check-flight: FAILED\n";
    exit 1
  end;
  Printf.printf "check-flight: all checks passed\n"

let check_flight_cmd =
  let doc =
    "Validate the flight recorder: zero added fences and <= 2% commit overhead \
     (fig_commit_batch's stream), recorder-on workload psan-clean, crash-sweep recovery pin \
     (replay on/off identical), dossier agrees with the oracle, and the planted \
     Drop_durable_notify is convicted by the dossier alone."
  in
  Cmd.v (Cmd.info "check-flight" ~doc) Term.(const run_check_flight $ const ())

let () =
  let doc = "Tinca (SC'17) reproduction: regenerate the paper's tables and figures." in
  let info = Cmd.info "tinca_bench" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; trace_cmd; fio_cmd; bench_json_cmd; stats_cmd; check_obs_cmd;
            check_shard_cmd; check_group_cmd; check_page_cmd; check_flight_cmd; forensics_cmd ]))
