(* CLI driver for the reproduction experiments.

   tinca_bench list           - show every experiment id
   tinca_bench run <id> ...   - run one or more experiments
   tinca_bench run all        - run everything *)

open Cmdliner
module Registry = Tinca_harness.Registry

let list_cmd =
  let doc = "List all experiments (paper tables and figures)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-20s %-50s [%s]\n" e.Registry.id e.Registry.title e.Registry.paper_ref)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_ids csv_dir ids =
  let targets =
    if List.mem "all" ids then Registry.all
    else
      List.map
        (fun id ->
          match Registry.find id with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment %S; try `tinca_bench list`\n" id;
              exit 1)
        ids
  in
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      (match csv_dir with
      | None -> print_string (Registry.run_experiment e)
      | Some dir ->
          Printf.printf "=== %s: %s ===\n" e.Registry.id e.Registry.title;
          List.iteri
            (fun i table ->
              let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" e.Registry.id i) in
              let oc = open_out path in
              output_string oc (Tinca_harness.Registry.csv_of table);
              close_out oc;
              Printf.printf "  wrote %s\n" path)
            (e.Registry.run ()));
      Printf.printf "(wall time %.1fs)\n\n%!" (Unix.gettimeofday () -. t0))
    targets

let run_cmd =
  let doc = "Run experiments by id (or `all`)." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Write each table as a CSV file into $(docv) instead of printing it.")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ csv $ ids)

(* `trace` subcommand: replay a block trace (from a file, or synthesized)
   over a chosen stack and report the evaluation metrics. *)
let run_trace stack_name trace_file synth_ops read_pct tech flush_instr verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let module Stacks = Tinca_stacks.Stacks in
  let module Fs = Tinca_fs.Fs in
  let module Trace = Tinca_workloads.Trace in
  let module Ops = Tinca_workloads.Ops in
  let open Tinca_sim in
  let trace =
    match trace_file with
    | Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        Trace.parse text
    | None ->
        Trace.synthesize ~seed:7 ~nblocks:4096 ~ops:synth_ops ~read_pct ~zipf_theta:0.9
          ~fsync_every:8
  in
  let env = Stacks.make_env ~tech ~flush_instr ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:65536 () in
  let stack =
    match stack_name with
    | "tinca" -> Stacks.tinca env
    | "classic" -> Stacks.classic ~journal_len:4096 env
    | "ubj" -> Stacks.ubj env
    | "nojournal" -> Stacks.nojournal env
    | other ->
        Printf.eprintf "unknown stack %S (tinca|classic|ubj|nojournal)\n" other;
        exit 1
  in
  let fs =
    Fs.format
      ~config:{ Fs.default_config with journaled = stack_name <> "nojournal" }
      stack.Stacks.backend
  in
  let ops = Ops.of_fs ~compute:(Clock.advance env.Stacks.clock) fs in
  Trace.prealloc ~block_size:4096 trace ops;
  Fs.fsync fs;
  let t0 = Clock.now_ns env.Stacks.clock in
  let snap = Metrics.snapshot env.Stacks.metrics in
  let stats = Trace.run ~block_size:4096 trace ops in
  let seconds = (Clock.now_ns env.Stacks.clock -. t0) /. 1e9 in
  let per_op name =
    float_of_int (Metrics.since env.Stacks.metrics snap name) /. float_of_int stats.Ops.ops
  in
  Printf.printf "stack=%s ops=%d sim_seconds=%.4f\n" stack.Stacks.label stats.Ops.ops seconds;
  Printf.printf "throughput        %10.0f ops/s\n" (float_of_int stats.Ops.ops /. seconds);
  Printf.printf "clflush/op        %10.1f\n" (per_op "pmem.clflush");
  Printf.printf "disk writes/op    %10.2f\n" (per_op "disk.writes");
  Printf.printf "disk reads/op     %10.2f\n" (per_op "disk.reads");
  Printf.printf "cache write hit   %10.1f%%\n" (100.0 *. stack.Stacks.cache_write_hit_rate ())

let trace_cmd =
  let doc = "Replay a block trace (R/W/F text format) over a stack." in
  let stack =
    Arg.(value & opt string "tinca" & info [ "stack" ] ~docv:"STACK"
           ~doc:"Stack to drive: tinca, classic, ubj or nojournal.")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file" ] ~docv:"TRACE"
           ~doc:"Trace file to replay (default: synthesize one).")
  in
  let ops =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"N" ~doc:"Synthesized trace length.")
  in
  let read_pct =
    Arg.(value & opt float 0.5 & info [ "read-pct" ] ~docv:"P"
           ~doc:"Synthesized read fraction in [0,1].")
  in
  let tech =
    let module Latency = Tinca_sim.Latency in
    Arg.(value
         & opt
             (enum
                [ ("pcm", Latency.Pcm); ("nvdimm", Latency.Nvdimm); ("stt-ram", Latency.Stt_ram);
                  ("reram", Latency.Reram) ])
             Latency.Pcm
         & info [ "tech" ] ~docv:"TECH"
             ~doc:"NVM technology latency model: pcm, nvdimm, stt-ram or reram.")
  in
  let flush_instr =
    let module Latency = Tinca_sim.Latency in
    Arg.(value
         & opt
             (enum
                [ ("clflush", Latency.Clflush); ("clflushopt", Latency.Clflushopt);
                  ("clwb", Latency.Clwb) ])
             Latency.Clflush
         & info [ "flush-instr" ] ~docv:"INSTR"
             ~doc:"Cache-line flush instruction: clflush (serializing), clflushopt or clwb \
                   (pipelined write-back).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log recovery/commit activity.") in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace $ stack $ file $ ops $ read_pct $ tech $ flush_instr $ verbose)

(* `bench-json` subcommand: emit the commit-protocol micro-benchmark and
   trace-replay throughput as a machine-readable artifact for CI. *)
let bench_json_cmd =
  let doc = "Write the commit-protocol benchmark results as JSON (CI artifact)." in
  let out =
    Arg.(value & opt string "BENCH_commit.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the JSON document.")
  in
  let run out =
    let t0 = Unix.gettimeofday () in
    let json = Tinca_harness.Exp_commit.bench_json () in
    let oc = open_out out in
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s (wall time %.1fs)\n" out (Unix.gettimeofday () -. t0)
  in
  Cmd.v (Cmd.info "bench-json" ~doc) Term.(const run $ out)

let () =
  let doc = "Tinca (SC'17) reproduction: regenerate the paper's tables and figures." in
  let info = Cmd.info "tinca_bench" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; trace_cmd; bench_json_cmd ]))
