(* tinca_lint — static analyzer driver (`make lint`).

   Scans lib/ for pmem-discipline violations (see Tinca_lint.Rules),
   reconciles them against the checked-in baseline and exits non-zero on
   any fresh finding or stale baseline entry.  `--update` rewrites the
   baseline from the current tree (new entries get a TODO justification
   a human must edit); `--inventory` prints only R1's shared-mutable-
   state inventory. *)

open Tinca_lint

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let by_rule findings rule = List.filter (fun (f : Rules.finding) -> f.rule = rule) findings

let main root baseline_path update inventory_only quiet =
  let old_baseline =
    if Sys.file_exists baseline_path then (
      match Baseline.parse (read_file baseline_path) with
      | Ok b -> b
      | Error msg ->
          Printf.eprintf "tinca-lint: %s: %s\n" baseline_path msg;
          exit 2)
    else []
  in
  let report = Lint.run ~root in
  if report.Lint.errors <> [] then begin
    List.iter (fun (_, msg) -> Printf.eprintf "tinca-lint: %s\n" msg) report.Lint.errors;
    exit 2
  end;
  let inv = Lint.inventory report in
  if inventory_only then begin
    Printf.printf "R1 toplevel-mutable-state inventory for lib/ (%d sites):\n" (List.length inv);
    List.iter (fun f -> print_endline ("  " ^ Lint.pp_finding f)) inv;
    exit 0
  end;
  if update then begin
    let entries = Lint.to_baseline ~old:old_baseline report in
    write_file baseline_path (Baseline.emit entries);
    Printf.printf "tinca-lint: wrote %d entries to %s (edit any TODO justifications)\n"
      (List.length (List.sort_uniq compare entries))
      baseline_path;
    exit 0
  end;
  let fresh, stale = Baseline.reconcile old_baseline report.Lint.findings in
  if not quiet then begin
    Printf.printf "tinca-lint: scanned %d files under %s/lib\n"
      (List.length report.Lint.files) root;
    List.iter
      (fun rule ->
        Printf.printf "  %s %-62s %d finding(s)\n" (Rules.rule_name rule) (Rules.rule_title rule)
          (List.length (by_rule report.Lint.findings rule)))
      [ Rules.R1; Rules.R2; Rules.R3; Rules.R4; Rules.R5 ];
    Printf.printf "R1 shared-state inventory (%d sites):\n" (List.length inv);
    List.iter (fun f -> print_endline ("  " ^ Lint.pp_finding f)) inv;
    Printf.printf "deferred fence obligations (%d):\n" (List.length report.Lint.deferred);
    List.iter (fun d -> print_endline ("  " ^ Lint.pp_deferred d)) report.Lint.deferred
  end;
  if fresh <> [] then begin
    Printf.printf "fresh findings (%d) — fix them or baseline them with a justification:\n"
      (List.length fresh);
    List.iter (fun f -> print_endline ("  " ^ Lint.pp_finding f)) fresh
  end;
  if stale <> [] then begin
    Printf.printf "stale baseline entries (%d) — the debt was paid; delete them from %s:\n"
      (List.length stale) baseline_path;
    List.iter
      (fun (e : Baseline.entry) ->
        Printf.printf "  %s %s %s\n" (Rules.rule_name e.Baseline.rule) e.Baseline.file
          e.Baseline.token)
      stale
  end;
  if fresh = [] && stale = [] then begin
    if not quiet then
      Printf.printf "lint clean: %d finding(s), all baselined with justifications\n"
        (List.length report.Lint.findings);
    exit 0
  end
  else exit 1

open Cmdliner

let root =
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan.")

let baseline_path =
  Arg.(
    value
    & opt string "lint.baseline"
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline (accepted-findings) file.")

let update =
  Arg.(
    value & flag
    & info [ "update" ]
        ~doc:"Rewrite the baseline from the current tree, keeping existing justifications.")

let inventory_only =
  Arg.(
    value & flag
    & info [ "inventory" ] ~doc:"Print only R1's toplevel-mutable-state inventory and exit.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print failures.")

let cmd =
  Cmd.v
    (Cmd.info "tinca_lint" ~doc:"Static analyzer for pmem discipline (R1-R5); see DESIGN.md")
    Term.(const main $ root $ baseline_path $ update $ inventory_only $ quiet)

let () = exit (Cmd.eval cmd)
